package analytic

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"testing"

	"plurality/internal/population"
	"plurality/internal/theory"
)

// updateCalibration regenerates the embedded calibration artifact by
// fully simulating the default grid:
//
//	go test ./internal/analytic -run Calibration -update-calibration
var updateCalibration = flag.Bool("update-calibration", false, "refit and rewrite testdata/analytic_calibration.json")

func TestUpdateCalibration(t *testing.T) {
	if !*updateCalibration {
		t.Skip("pass -update-calibration to refit the artifact")
	}
	obs, err := ObserveAll(DefaultCalibrationPoints())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(obs, CalibrationConfidence)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/analytic_calibration.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, fit := range m.Fits {
		t.Logf("%s: C = %.4f, interval ×/÷ %.2f over %d points", name, math.Exp(fit.LogC), math.Exp(fit.HalfWidth), fit.Points)
	}
}

// TestDefaultModelSelfDescribing checks the embedded artifact: it
// loads, matches the current schema version, covers both dynamics at
// the nominal confidence, was calibrated up to the largest simulable
// n — and refitting its own recorded observations reproduces its
// fitted constants exactly, so the artifact carries everything needed
// to audit or regenerate it.
func TestDefaultModelSelfDescribing(t *testing.T) {
	m, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != ModelVersion {
		t.Fatalf("version = %q, want %q", m.Version, ModelVersion)
	}
	if m.Confidence != CalibrationConfidence {
		t.Errorf("confidence = %v, want %v", m.Confidence, CalibrationConfidence)
	}
	if m.CalibratedN != float64(population.MaxN) {
		t.Errorf("calibrated_max_n = %v, want %v (largest simulable n)", m.CalibratedN, float64(population.MaxN))
	}
	for _, dyn := range []string{"3-Majority", "2-Choices"} {
		fit, ok := m.Fits[dyn]
		if !ok {
			t.Fatalf("no fit for %s", dyn)
		}
		if fit.Points < 2 || fit.HalfWidth < MinHalfWidth {
			t.Errorf("%s fit degenerate: %+v", dyn, fit)
		}
	}
	refit, err := Fit(m.Observations, m.Confidence)
	if err != nil {
		t.Fatalf("refit of recorded observations: %v", err)
	}
	for dyn, want := range m.Fits {
		got := refit.Fits[dyn]
		if math.Abs(got.LogC-want.LogC) > 1e-12 || math.Abs(got.HalfWidth-want.HalfWidth) > 1e-12 || got.Points != want.Points {
			t.Errorf("%s: refit %+v != artifact %+v", dyn, got, want)
		}
	}
}

// TestShapeReducesToConsensusTimeShape pins the balanced-line
// identity the model's docs claim: at δ = 1/k the unified shape is
// exactly the Theorem 1.1/2.1 shape.
func TestShapeReducesToConsensusTimeShape(t *testing.T) {
	for _, d := range []theory.Dynamics{theory.ThreeMajority, theory.TwoChoices} {
		for _, n := range []float64{1e4, 1e6, 1e9, 1e12} {
			for _, k := range []float64{2, 10, 1e3, 1e6} {
				got := Shape(d, n, 1/k)
				want := theory.ConsensusTimeShape(d, n, k)
				if math.Abs(got-want) > 1e-9*want {
					t.Errorf("%s n=%g k=%g: Shape(δ=1/k) = %g, ConsensusTimeShape = %g", d, n, k, got, want)
				}
			}
		}
	}
}

func TestShapeBoundaries(t *testing.T) {
	if s := Shape(theory.ThreeMajority, 1e6, 1); s != 0 {
		t.Errorf("δ=1 (consensus already): shape = %v, want 0", s)
	}
	if s := Shape(theory.ThreeMajority, 1, 0.5); s != 0 {
		t.Errorf("n=1: shape = %v, want 0", s)
	}
	if s := Shape(theory.ThreeMajority, 1e6, 0); !math.IsInf(s, 1) {
		t.Errorf("δ=0: shape = %v, want +Inf", s)
	}
}

func TestPredictIntervalAndErrors(t *testing.T) {
	m, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Predict("3-majority", 1e9, 0.01, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !(p.RoundsLo < p.Rounds && p.Rounds < p.RoundsHi) {
		t.Errorf("interval not ordered: [%v, %v, %v]", p.RoundsLo, p.Rounds, p.RoundsHi)
	}
	if p.ModelVersion != ModelVersion || p.Confidence != m.Confidence {
		t.Errorf("prediction metadata %+v", p)
	}
	if p.Dynamics != "3-Majority" {
		t.Errorf("dynamics = %q, want canonical name", p.Dynamics)
	}
	// Engine protocol names and theory names resolve identically.
	q, err := m.Predict("3-Majority", 1e9, 0.01, 0.1)
	if err != nil || q != p {
		t.Errorf("name aliasing: %+v vs %+v (err %v)", q, p, err)
	}
	if single, err := m.Predict("2-choices", 1e9, 1, 1); err != nil || single.Rounds != 0 {
		t.Errorf("δ=1 start: %+v, %v; want zero-round prediction", single, err)
	}
	for _, bad := range []struct {
		dyn              string
		n, gamma0, delta float64
	}{
		{"voter", 1e9, 0.01, 0.1},
		{"3-majority", 1, 0.01, 0.1},
		{"3-majority", 1e9, 0, 0.1},
		{"3-majority", 1e9, 0.01, 0},
		{"3-majority", 1e9, 0.01, 1.5},
		{"3-majority", 1e9, math.NaN(), 0.1},
	} {
		if _, err := m.Predict(bad.dyn, bad.n, bad.gamma0, bad.delta); err == nil {
			t.Errorf("Predict(%+v) accepted", bad)
		}
	}
}

func TestProfile(t *testing.T) {
	gamma0, delta := Profile([]int64{50, 30, 20})
	if math.Abs(gamma0-0.38) > 1e-12 || delta != 0.5 {
		t.Errorf("Profile = (%v, %v), want (0.38, 0.5)", gamma0, delta)
	}
	if g, d := Profile([]int64{0, -3}); g != 0 || d != 0 {
		t.Errorf("empty profile = (%v, %v)", g, d)
	}
	// Zero counts are ignored, matching the engine's live-opinion view.
	g1, d1 := Profile([]int64{10, 0, 10})
	g2, d2 := Profile([]int64{10, 10})
	if g1 != g2 || d1 != d2 {
		t.Errorf("zero-count invariance: (%v, %v) vs (%v, %v)", g1, d1, g2, d2)
	}
}

func TestFitRejectsDegenerateInput(t *testing.T) {
	good := Observation{Dynamics: "3-Majority", N: 1e6, K: 10, Gamma0: 0.1, Delta: 0.1, Rounds: 100}
	if _, err := Fit([]Observation{good, good}, 0.95); err != nil {
		t.Fatalf("minimal valid fit: %v", err)
	}
	cases := [][]Observation{
		{good},                                 // one point per dynamics
		{good, {Dynamics: "voter", Rounds: 1}}, // unknown dynamics
		{good, {Dynamics: "3-Majority", N: 1e6, Delta: 0.1}},          // zero rounds
		{good, {Dynamics: "3-Majority", N: 1e6, Delta: 1, Rounds: 5}}, // zero shape
	}
	for i, obs := range cases {
		if _, err := Fit(obs, 0.95); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := Fit([]Observation{good, good}, 1.5); err == nil {
		t.Error("confidence 1.5 accepted")
	}
}

func TestObserveBalancedAgreesWithExplicitCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates")
	}
	p := GridPoint{Dynamics: "3-Majority", N: 200_000, K: 16, Trials: 3, Seed: 11}
	byK, err := Observe(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Counts = population.Balanced(p.N, p.K).Counts()
	byCounts, err := Observe(p)
	if err != nil {
		t.Fatal(err)
	}
	if byK != byCounts {
		t.Errorf("balanced-by-k %+v != explicit counts %+v", byK, byCounts)
	}
	if byK.Gamma0 < 1.0/16-1e-9 || byK.Delta < 1.0/16-1e-9 || byK.Delta > 1.0/16+1e-6 {
		t.Errorf("balanced profile (%v, %v) far from 1/16", byK.Gamma0, byK.Delta)
	}
}

func TestReportPass(t *testing.T) {
	mk := func(total, hits int, conf float64) Report {
		r := Report{Confidence: conf, Hits: hits, Checks: make([]Check, total)}
		return r
	}
	for _, c := range []struct {
		r    Report
		want bool
	}{
		{mk(10, 10, 0.95), true},
		{mk(10, 9, 0.95), true},  // 1 miss ≤ ceil(0.5)
		{mk(10, 8, 0.95), false}, // 2 misses > 1
		{mk(0, 0, 0.95), true},
		{mk(20, 19, 0.95), true},
		{mk(20, 18, 0.95), false},
	} {
		if got := c.r.Pass(); got != c.want {
			t.Errorf("Pass(%d/%d @ %v) = %v, want %v", c.r.Hits, len(c.r.Checks), c.r.Confidence, got, c.want)
		}
	}
}
