package analytic

import "testing"

// TestCrossValidateHeldOutGrid is the first-class harness the tier's
// guarantee rests on: simulate the held-out grid — disjoint seeds and
// (k, δ) values from the calibration grid, anchored at the largest
// simulable n — and fail if observed consensus times fall outside the
// embedded model's prediction intervals more often than the nominal
// rate allows.
func TestCrossValidateHeldOutGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full held-out grid")
	}
	m, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	obs, err := ObserveAll(DefaultCrossValPoints())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.CrossValidate(obs)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Checks {
		status := "hit "
		if !c.Hit {
			status = "MISS"
		}
		t.Logf("%s %-10s n=%.3g k=%-4d δ=%-8.3g observed=%-7.4g predicted=[%.4g, %.4g, %.4g]",
			status, c.Observation.Dynamics, c.Observation.N, c.Observation.K, c.Observation.Delta,
			c.Observation.Rounds, c.Prediction.RoundsLo, c.Prediction.Rounds, c.Prediction.RoundsHi)
	}
	t.Logf("hit rate %d/%d = %.2f (nominal %.2f)", rep.Hits, len(rep.Checks), rep.HitRate(), rep.Confidence)
	if !rep.Pass() {
		t.Fatalf("cross-validation failed: hit rate %.2f below nominal %.2f", rep.HitRate(), rep.Confidence)
	}
}
