package analytic

import (
	"fmt"

	"plurality"
	"plurality/internal/population"
)

// GridPoint is one calibration (or cross-validation) configuration:
// either a balanced k-opinion start or an explicit count vector, run
// for Trials trials under the named dynamics.
type GridPoint struct {
	Dynamics string  `json:"dynamics"`
	N        int64   `json:"n"`
	K        int     `json:"k,omitempty"`      // balanced start when Counts is nil
	Counts   []int64 `json:"counts,omitempty"` // explicit start; N must equal the sum
	Trials   int     `json:"trials"`
	Seed     uint64  `json:"seed"`
}

// Observe fully simulates one grid point on the exact sync engine and
// reduces it to the Observation the model fits against. Every trial
// must reach consensus — a cutoff hides the very quantity being
// calibrated, so it is an error, not a censored data point.
func Observe(p GridPoint) (Observation, error) {
	d, ok := DynamicsByName(p.Dynamics)
	if !ok {
		return Observation{}, fmt.Errorf("analytic: grid point has unknown dynamics %q", p.Dynamics)
	}
	var proto plurality.Protocol
	switch d.String() {
	case "3-Majority":
		proto = plurality.ThreeMajority()
	default:
		proto = plurality.TwoChoices()
	}
	counts := p.Counts
	if counts == nil {
		counts = population.Balanced(p.N, p.K).Counts()
	}
	gamma0, delta := Profile(counts)
	e := plurality.Experiment{
		N:         p.N,
		Protocol:  proto,
		Init:      plurality.Counts(counts),
		Seed:      p.Seed,
		NumTrials: p.Trials,
	}
	out, err := e.Run()
	if err != nil {
		return Observation{}, fmt.Errorf("analytic: grid point (%s n=%d k=%d): %w", p.Dynamics, p.N, p.K, err)
	}
	if out.Converged() != len(out.Trials) {
		return Observation{}, fmt.Errorf("analytic: grid point (%s n=%d k=%d): %d/%d trials converged",
			p.Dynamics, p.N, p.K, out.Converged(), len(out.Trials))
	}
	k := p.K
	if k == 0 {
		k = len(counts)
	}
	return Observation{
		Dynamics: d.String(),
		N:        float64(p.N),
		K:        k,
		Gamma0:   gamma0,
		Delta:    delta,
		Rounds:   out.MedianRounds(),
		Trials:   p.Trials,
		Seed:     p.Seed,
	}, nil
}

// ObserveAll runs a grid sequentially (each point already fans its
// trials across cores) and returns the observations in grid order.
func ObserveAll(grid []GridPoint) ([]Observation, error) {
	obs := make([]Observation, 0, len(grid))
	for _, p := range grid {
		o, err := Observe(p)
		if err != nil {
			return nil, err
		}
		obs = append(obs, o)
	}
	return obs, nil
}

// LeaderCounts builds an n-vertex histogram whose largest opinion has
// density delta, with the remaining mass spread over tail opinions of
// density tailDensity each (the last takes the remainder) — the
// examples/phaseportrait configuration family, where the max-density
// law is exercised away from the balanced δ = 1/k line.
func LeaderCounts(n int64, delta, tailDensity float64) []int64 {
	leader := int64(delta * float64(n))
	tail := int64(tailDensity * float64(n))
	counts := []int64{leader}
	for remaining := n - leader; remaining > 0; {
		c := tail
		if c > remaining {
			c = remaining
		}
		counts = append(counts, c)
		remaining -= c
	}
	return counts
}

// CalibrationConfidence is the nominal coverage the default grids are
// fitted and cross-validated at.
const CalibrationConfidence = 0.95

// calibrationSeed derives a distinct fixed seed per grid point so the
// artifact is reproducible and no two points share trial streams.
func calibrationSeed(base uint64, i int) uint64 { return base + uint64(i)*1_000_003 }

// DefaultCalibrationPoints is the grid the shipped artifact is fitted
// to: both dynamics × (balanced supports and leader configurations)
// spanning n from 10⁶ to the largest simulable n (population.MaxN),
// so the fitted constants are anchored exactly where the analytic
// tier takes over from simulation.
func DefaultCalibrationPoints() []GridPoint {
	const trials = 5
	var grid []GridPoint
	for _, dyn := range []string{"3-Majority", "2-Choices"} {
		for _, p := range []GridPoint{
			{N: 1_000_000, K: 8},
			{N: 1_000_000, K: 32},
			{N: 1_000_000, K: 128},
			{N: 100_000_000, K: 32},
			{N: population.MaxN, K: 8},
			{N: population.MaxN, K: 64},
			{N: 1_000_000, Counts: LeaderCounts(1_000_000, 1.0/4, 1.0/256)},
			{N: 1_000_000, Counts: LeaderCounts(1_000_000, 1.0/16, 1.0/256)},
			{N: 1_000_000, Counts: LeaderCounts(1_000_000, 1.0/64, 1.0/256)},
			{N: population.MaxN, Counts: LeaderCounts(population.MaxN, 1.0/16, 1.0/256)},
		} {
			p.Dynamics = dyn
			p.Trials = trials
			p.Seed = calibrationSeed(0x9e3779b9, len(grid))
			grid = append(grid, p)
		}
	}
	return grid
}

// DefaultCrossValPoints is the held-out grid the CI harness simulates
// and checks against the embedded model: disjoint seeds and disjoint
// (k, δ) values from the calibration grid, pinned at the largest
// simulable n plus one decade below.
func DefaultCrossValPoints() []GridPoint {
	const trials = 3
	var grid []GridPoint
	for _, dyn := range []string{"3-Majority", "2-Choices"} {
		for _, p := range []GridPoint{
			{N: 10_000_000, K: 16},
			{N: population.MaxN, K: 16},
			{N: population.MaxN, K: 48},
			{N: population.MaxN, Counts: LeaderCounts(population.MaxN, 1.0/8, 1.0/512)},
			{N: population.MaxN, Counts: LeaderCounts(population.MaxN, 1.0/32, 1.0/512)},
		} {
			p.Dynamics = dyn
			p.Trials = trials
			p.Seed = calibrationSeed(0x5bd1e995, len(grid))
			grid = append(grid, p)
		}
	}
	return grid
}
