// Package analytic is the theory-backed answer tier for planet-scale
// n: it serves predicted consensus-time distributions from the
// paper's fitted scaling laws in microseconds, where simulation would
// need memory (and caches) proportional to the request.
//
// The model rests on two validated results:
//
//   - the Theorem 1.1 / Theorem 2.1 consensus-time shapes
//     (theory.ConsensusTimeShape, theory.ConsensusTimeFromGamma,
//     theory.NormGrowthTimeShape), and
//   - the D'Archivio–Becchetti–Clementi–Pasquale max-initial-density
//     law (arXiv 2606.11778; reproduced end to end by
//     examples/phaseportrait): 3-Majority's consensus time is
//     governed by δ = max_i α_i(0), T = Θ̃(1/δ).
//
// Shape unifies them: S_d(n, δ) = min(ln(n)/δ, NormGrowthTimeShape),
// which for the balanced configuration (δ = 1/k) reduces exactly to
// the Theorem 1.1 shape min(k·ln n, …). Fit estimates the one free
// multiplicative constant per dynamics — and the spread around it —
// from calibration runs at the largest simulable n, producing a Model
// whose Predict returns a point estimate plus an empirical prediction
// interval. The fitted Model is persisted as a versioned JSON
// artifact (testdata/analytic_calibration.json, embedded as the
// Default model; regenerate with
// `go test ./internal/analytic -run Calibration -update-calibration`),
// and CrossValidate is the first-class harness that fails the build
// when held-out simulations at the largest simulable n fall outside
// the interval more often than the nominal rate.
//
// internal/service dispatches requests to this tier (Request.Tier
// "analytic", or automatically when n exceeds the simulation caps)
// and returns Responses marked "method": "analytic"; see DESIGN.md
// §"Answer tiers: simulation and analytic", which owns this package's
// contract.
package analytic
