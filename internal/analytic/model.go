package analytic

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"plurality/internal/theory"
)

// ModelVersion identifies the calibration-artifact schema plus the
// fitting procedure. Bump it whenever Fit, Shape, or the artifact
// layout changes meaning: the version is part of the response payload
// (and therefore of what cached analytic answers assert), so a silent
// change would let stale artifacts masquerade as current ones.
const ModelVersion = "analytic-v1"

// MinHalfWidth is the floor on the fitted log-space interval
// half-width. Calibration grids are finite; a grid that happens to
// land tightly around the fit must not produce an interval narrower
// than the run-to-run spread we observe at fixed parameters
// (median-of-trials jitter is ±20–40% at small grids).
const MinHalfWidth = 0.35

// Observation is one calibration or cross-validation measurement: a
// fully simulated configuration reduced to the quantities the model
// fits against.
type Observation struct {
	Dynamics string  `json:"dynamics"`         // theory.Dynamics name: "3-Majority" or "2-Choices"
	N        float64 `json:"n"`                // population size
	K        int     `json:"k"`                // initial support size (informational)
	Gamma0   float64 `json:"gamma0"`           // initial squared-density norm Σα_i²
	Delta    float64 `json:"delta"`            // max initial opinion density max α_i
	Rounds   float64 `json:"rounds"`           // observed median consensus rounds
	Trials   int     `json:"trials,omitempty"` // trials behind the median
	Seed     uint64  `json:"seed,omitempty"`   // base seed of the runs
}

// DynamicsFit is the per-dynamics calibration result: rounds are
// modelled as exp(LogC)·Shape with an empirical prediction interval
// of ±HalfWidth in log space.
type DynamicsFit struct {
	LogC      float64 `json:"log_c"`
	HalfWidth float64 `json:"half_width"`
	Points    int     `json:"points"`
}

// Model is the fitted analytic tier: one multiplicative constant (and
// interval) per dynamics, plus the observations it was fitted to so
// the artifact is self-describing and re-fittable.
type Model struct {
	Version      string                 `json:"version"`
	Confidence   float64                `json:"confidence"`
	CalibratedN  float64                `json:"calibrated_max_n"` // largest simulated n in the grid
	Fits         map[string]DynamicsFit `json:"fits"`             // keyed by theory.Dynamics name
	Observations []Observation          `json:"observations"`
}

// Prediction is an analytic answer: a consensus-time point estimate
// with the model's empirical prediction interval.
type Prediction struct {
	ModelVersion string  `json:"model_version"`
	Dynamics     string  `json:"dynamics"`
	Shape        float64 `json:"shape"`  // S_d(n, δ) before the fitted constant
	Gamma0       float64 `json:"gamma0"` // echo of the request's initial Σα_i²
	MaxDensity   float64 `json:"max_density"`
	Rounds       float64 `json:"rounds"`     // point estimate exp(LogC)·Shape
	RoundsLo     float64 `json:"rounds_lo"`  // lower prediction-interval bound
	RoundsHi     float64 `json:"rounds_hi"`  // upper prediction-interval bound
	Confidence   float64 `json:"confidence"` // nominal coverage of [lo, hi]
}

// DynamicsByName maps the engine's protocol names to theory.Dynamics.
// The analytic tier covers exactly the two dynamics the paper's
// consensus-time theorems cover.
func DynamicsByName(name string) (theory.Dynamics, bool) {
	switch name {
	case theory.ThreeMajority.String(), "3-majority":
		return theory.ThreeMajority, true
	case theory.TwoChoices.String(), "2-choices":
		return theory.TwoChoices, true
	}
	return 0, false
}

// Shape is the dimensionless consensus-time shape the model scales:
//
//	S_d(n, δ) = min(ln(n)/δ, NormGrowthTimeShape(d, n))
//
// The first branch is the D'Archivio max-density law (an effective
// ConsensusTimeFromGamma with γ replaced by δ); the second is the
// k-independent branch of Theorem 1.1/2.1, which wins once the
// support is so fragmented that the norm-growth phase dominates. At
// the balanced configuration δ = 1/k this is exactly
// theory.ConsensusTimeShape(d, n, k).
func Shape(d theory.Dynamics, n, delta float64) float64 {
	if n <= 1 || delta >= 1 {
		return 0 // already (or trivially) in consensus
	}
	if delta <= 0 {
		return math.Inf(1)
	}
	return math.Min(theory.ConsensusTimeFromGamma(n, delta), theory.NormGrowthTimeShape(d, n))
}

// Fit calibrates one Model from simulated observations. For each
// dynamics it fits the single multiplicative constant in log space
// (LogC = mean of ln(rounds/shape)) and sets the prediction interval
// from the worst residual with a 1.5× safety factor, floored at
// MinHalfWidth. Every dynamics needs at least two observations with
// positive, finite shape and rounds.
func Fit(obs []Observation, confidence float64) (*Model, error) {
	if confidence <= 0 || confidence >= 1 {
		return nil, fmt.Errorf("analytic: confidence %v outside (0, 1)", confidence)
	}
	resid := make(map[string][]float64)
	maxN := 0.0
	for i, o := range obs {
		d, ok := DynamicsByName(o.Dynamics)
		if !ok {
			return nil, fmt.Errorf("analytic: observation %d has unknown dynamics %q", i, o.Dynamics)
		}
		s := Shape(d, o.N, o.Delta)
		if !(s > 0) || math.IsInf(s, 1) || !(o.Rounds > 0) {
			return nil, fmt.Errorf("analytic: observation %d (n=%v δ=%v rounds=%v) is degenerate", i, o.N, o.Delta, o.Rounds)
		}
		resid[d.String()] = append(resid[d.String()], math.Log(o.Rounds/s))
		maxN = math.Max(maxN, o.N)
	}
	m := &Model{
		Version:      ModelVersion,
		Confidence:   confidence,
		CalibratedN:  maxN,
		Fits:         make(map[string]DynamicsFit, len(resid)),
		Observations: append([]Observation(nil), obs...),
	}
	sort.SliceStable(m.Observations, func(i, j int) bool {
		a, b := m.Observations[i], m.Observations[j]
		if a.Dynamics != b.Dynamics {
			return a.Dynamics < b.Dynamics
		}
		if a.N != b.N {
			return a.N < b.N
		}
		return a.Delta > b.Delta
	})
	for name, rs := range resid {
		if len(rs) < 2 {
			return nil, fmt.Errorf("analytic: dynamics %s has %d observation(s); need at least 2", name, len(rs))
		}
		mean := 0.0
		for _, r := range rs {
			mean += r
		}
		mean /= float64(len(rs))
		worst := 0.0
		for _, r := range rs {
			worst = math.Max(worst, math.Abs(r-mean))
		}
		m.Fits[name] = DynamicsFit{
			LogC:      mean,
			HalfWidth: math.Max(1.5*worst, MinHalfWidth),
			Points:    len(rs),
		}
	}
	return m, nil
}

// Predict evaluates the fitted law for one configuration. delta is
// the maximum initial opinion density, gamma0 the initial Σα_i²
// (echoed into the prediction; the shape depends only on delta).
func (m *Model) Predict(dynamics string, n, gamma0, delta float64) (Prediction, error) {
	d, ok := DynamicsByName(dynamics)
	if !ok {
		return Prediction{}, fmt.Errorf("analytic: no fitted law for dynamics %q", dynamics)
	}
	fit, ok := m.Fits[d.String()]
	if !ok {
		return Prediction{}, fmt.Errorf("analytic: model %s has no fit for %s", m.Version, d)
	}
	if n < 2 {
		return Prediction{}, fmt.Errorf("analytic: population n=%v below 2", n)
	}
	if !(delta > 0) || delta > 1 || !(gamma0 > 0) || gamma0 > 1 {
		return Prediction{}, fmt.Errorf("analytic: densities γ₀=%v δ=%v outside (0, 1]", gamma0, delta)
	}
	p := Prediction{
		ModelVersion: m.Version,
		Dynamics:     d.String(),
		Shape:        Shape(d, n, delta),
		Gamma0:       gamma0,
		MaxDensity:   delta,
		Confidence:   m.Confidence,
	}
	if p.Shape == 0 { // single-opinion start: consensus at round 0
		return p, nil
	}
	p.Rounds = math.Exp(fit.LogC) * p.Shape
	p.RoundsLo = p.Rounds * math.Exp(-fit.HalfWidth)
	p.RoundsHi = p.Rounds * math.Exp(fit.HalfWidth)
	return p, nil
}

// Profile reduces an explicit count vector to the densities the model
// consumes: γ₀ = Σ(c_i/n)² and δ = max c_i/n. Zero counts are
// ignored; an empty or all-zero vector profiles to (0, 0).
func Profile(counts []int64) (gamma0, delta float64) {
	var n float64
	for _, c := range counts {
		if c > 0 {
			n += float64(c)
		}
	}
	if n == 0 {
		return 0, 0
	}
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		a := float64(c) / n
		gamma0 += a * a
		delta = math.Max(delta, a)
	}
	return gamma0, delta
}

//go:embed testdata/analytic_calibration.json
var calibrationJSON []byte

var defaultModel = sync.OnceValues(func() (*Model, error) {
	var m Model
	if err := json.Unmarshal(calibrationJSON, &m); err != nil {
		return nil, fmt.Errorf("analytic: embedded calibration artifact: %w", err)
	}
	if m.Version != ModelVersion {
		return nil, fmt.Errorf("analytic: embedded artifact version %q, want %s (regenerate with -update-calibration)", m.Version, ModelVersion)
	}
	return &m, nil
})

// Default returns the embedded calibrated model. The artifact is
// compiled into the binary, so the analytic tier needs no filesystem
// access at serve time.
func Default() (*Model, error) { return defaultModel() }
