package population

import (
	"fmt"

	"plurality/internal/rng"
)

// Fenwick is a binary indexed tree over opinion counts supporting
// O(log k) point updates and O(log k) sampling of a uniformly random
// vertex's opinion (i.e. opinion i with probability count(i)/total).
//
// The asynchronous schedulers in internal/async use it to run one
// single-vertex update per tick without rebuilding any distribution
// table: pick the updating vertex's class, pick the sampled neighbors'
// classes, then apply the ±1 count deltas.
type Fenwick struct {
	tree  []int64 // 1-based prefix-sum tree
	count []int64 // plain counts, for O(1) reads
	total int64
}

// NewFenwick builds a tree over a copy of counts. Counts must be
// non-negative with a positive total.
func NewFenwick(counts []int64) *Fenwick {
	f := &Fenwick{
		tree:  make([]int64, len(counts)+1),
		count: append([]int64(nil), counts...),
	}
	for i, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("population: NewFenwick negative count %d at %d", c, i))
		}
		f.total += c
		// Standard O(k) construction: push each value to its parent.
		idx := i + 1
		f.tree[idx] += c
		if parent := idx + (idx & -idx); parent < len(f.tree) {
			f.tree[parent] += f.tree[idx]
		}
	}
	if f.total <= 0 {
		panic("population: NewFenwick with zero total")
	}
	return f
}

// K returns the number of opinion slots.
func (f *Fenwick) K() int { return len(f.count) }

// Total returns the sum of all counts (the number of vertices).
func (f *Fenwick) Total() int64 { return f.total }

// Count returns the count of opinion i.
func (f *Fenwick) Count(i int) int64 { return f.count[i] }

// Add applies a delta to opinion i's count. The resulting count must
// remain non-negative.
func (f *Fenwick) Add(i int, delta int64) {
	if f.count[i]+delta < 0 {
		panic(fmt.Sprintf("population: Fenwick.Add would make count %d negative", i))
	}
	f.count[i] += delta
	f.total += delta
	for idx := i + 1; idx < len(f.tree); idx += idx & -idx {
		f.tree[idx] += delta
	}
}

// Move transfers one vertex from opinion from to opinion to.
func (f *Fenwick) Move(from, to int) {
	if from == to {
		return
	}
	f.Add(from, -1)
	f.Add(to, 1)
}

// Sample returns opinion i with probability Count(i)/Total(), by
// descending the implicit prefix-sum tree in O(log k).
func (f *Fenwick) Sample(r *rng.Rand) int {
	target := r.Int63n(f.total) // uniform in [0, total)
	idx := 0
	// Highest power of two not exceeding len(tree)-1.
	bit := 1
	for bit<<1 <= len(f.tree)-1 {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next < len(f.tree) && f.tree[next] <= target {
			target -= f.tree[next]
			idx = next
		}
	}
	return idx // idx is the 0-based opinion whose prefix contains target
}

// Counts returns a copy of the current counts.
func (f *Fenwick) Counts() []int64 {
	return append([]int64(nil), f.count...)
}

// Vector materializes the current counts as a population Vector.
func (f *Fenwick) Vector() *Vector {
	return mustFromOwnedCounts(f.Counts())
}
