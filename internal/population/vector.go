package population

import (
	"errors"
	"fmt"
)

// MaxN is the largest supported population size: Σc² ≤ N² must fit in
// the int64 Σc² aggregate, so N is capped at ⌊√(2⁶³−1)⌋.
const MaxN int64 = 3_037_000_499

// Vector is an opinion configuration: counts[i] vertices hold opinion i,
// for i in [0, K). The representation maintains the invariant that all
// counts are non-negative and sum to N, and mirrors the counts in a
// sparse view: live lists the indices of positive counts in strictly
// increasing order, pos[i] is opinion i's position in live (or -1 when
// extinct), and sumSq caches Σ_i counts[i]².
//
// Opinions are indexed from 0 here; the paper indexes them from 1.
type Vector struct {
	counts  []int64
	live    []int32 // indices with counts[i] > 0, strictly increasing
	liveCnt []int64 // liveCnt[j] = counts[live[j]], the compacted counts
	pos     []int32 // pos[i] = index into live, or -1 when counts[i] == 0
	n       int64
	sumSq   int64 // Σ counts[i]²
}

// ErrInvalid reports a configuration that violates the count invariants.
var ErrInvalid = errors.New("population: invalid configuration")

// fromOwnedCounts builds a Vector that takes ownership of counts
// (callers that must not share the slice copy it first).
func fromOwnedCounts(counts []int64) (*Vector, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("%w: no opinions", ErrInvalid)
	}
	v := &Vector{
		counts:  counts,
		live:    make([]int32, 0, len(counts)),
		liveCnt: make([]int64, 0, len(counts)),
		pos:     make([]int32, len(counts)),
	}
	if err := v.rebuild(); err != nil {
		return nil, err
	}
	return v, nil
}

// rebuild recomputes every aggregate from the dense counts in O(k).
func (v *Vector) rebuild() error {
	var n, sumSq int64
	v.live = v.live[:0]
	v.liveCnt = v.liveCnt[:0]
	for i, c := range v.counts {
		if c < 0 {
			return fmt.Errorf("%w: negative count %d for opinion %d", ErrInvalid, c, i)
		}
		if c == 0 {
			v.pos[i] = -1
			continue
		}
		v.pos[i] = int32(len(v.live))
		v.live = append(v.live, int32(i))
		v.liveCnt = append(v.liveCnt, c)
		n += c
		sumSq += c * c
	}
	if n == 0 {
		return fmt.Errorf("%w: zero total population", ErrInvalid)
	}
	if n > MaxN {
		return fmt.Errorf("%w: population %d exceeds MaxN = %d", ErrInvalid, n, MaxN)
	}
	v.n = n
	v.sumSq = sumSq
	return nil
}

// FromCounts builds a Vector from an explicit count slice. The slice is
// copied. It returns an error if counts is empty, any entry is
// negative, or the total is zero.
func FromCounts(counts []int64) (*Vector, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("%w: no opinions", ErrInvalid)
	}
	return fromOwnedCounts(append([]int64(nil), counts...))
}

// MustFromCounts is FromCounts that panics on error; for tests and
// package-internal construction of known-valid configurations.
func MustFromCounts(counts []int64) *Vector {
	v, err := FromCounts(counts)
	if err != nil {
		panic(err)
	}
	return v
}

// mustFromOwnedCounts is fromOwnedCounts that panics on error.
func mustFromOwnedCounts(counts []int64) *Vector {
	v, err := fromOwnedCounts(counts)
	if err != nil {
		panic(err)
	}
	return v
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	return &Vector{
		counts:  append([]int64(nil), v.counts...),
		live:    append([]int32(nil), v.live...),
		liveCnt: append([]int64(nil), v.liveCnt...),
		pos:     append([]int32(nil), v.pos...),
		n:       v.n,
		sumSq:   v.sumSq,
	}
}

// CopyFrom overwrites the receiver with src's configuration. The two
// vectors must have the same K.
func (v *Vector) CopyFrom(src *Vector) {
	if len(v.counts) != len(src.counts) {
		panic("population: CopyFrom with mismatched K")
	}
	copy(v.counts, src.counts)
	v.live = append(v.live[:0], src.live...)
	v.liveCnt = append(v.liveCnt[:0], src.liveCnt...)
	copy(v.pos, src.pos)
	v.n = src.n
	v.sumSq = src.sumSq
}

// K returns the number of opinion slots (including extinct opinions).
func (v *Vector) K() int { return len(v.counts) }

// N returns the number of vertices.
func (v *Vector) N() int64 { return v.n }

// Count returns the number of vertices supporting opinion i.
func (v *Vector) Count(i int) int64 { return v.counts[i] }

// Counts returns the backing count slice as a read-only view for bulk
// readers (CSV writers, reference engines, Fenwick construction).
// Callers that mutate it must call SetAll afterwards to re-establish
// the aggregate invariants; the O(live) hot paths use LiveIndices and
// CommitLive instead.
func (v *Vector) Counts() []int64 { return v.counts }

// SetAll replaces the counts (length must equal K) and recomputes every
// aggregate in O(k). It panics if the invariants are violated. The
// argument may alias the slice returned by Counts. Engines use
// CommitLive on the hot path; SetAll remains for bulk rewrites such as
// the per-vertex reference steppers.
func (v *Vector) SetAll(counts []int64) {
	if len(counts) != len(v.counts) {
		panic("population: SetAll with mismatched K")
	}
	copy(v.counts, counts)
	if err := v.rebuild(); err != nil {
		panic(err)
	}
}

// LiveIndices returns the indices of the live opinions in strictly
// increasing order. The slice is a read-only view into the Vector's
// state: it is invalidated by any mutation (CommitLive, SetAll, Move,
// CopyFrom) and must not be modified or retained across them. It is the
// iteration domain of the O(live) engine hot paths and is accepted
// directly as the index list of CommitLive.
func (v *Vector) LiveIndices() []int32 { return v.live }

// LiveCounts returns the counts of the live opinions, aligned with
// LiveIndices (LiveCounts()[j] supports opinion LiveIndices()[j]).
// Same view semantics as LiveIndices: read-only, invalidated by any
// mutation. Engines read it instead of indexing Count(i) per live
// opinion so the per-round loops scan memory sequentially.
func (v *Vector) LiveCounts() []int64 { return v.liveCnt }

// ForEachLive calls fn for every live opinion in increasing index
// order. fn must not mutate the Vector.
func (v *Vector) ForEachLive(fn func(opinion int, count int64)) {
	for j, i := range v.live {
		fn(int(i), v.liveCnt[j])
	}
}

// LivePos returns opinion i's position within LiveIndices, or -1 if the
// opinion is extinct — an O(1) scatter map from opinion index to dense
// live slot.
func (v *Vector) LivePos(i int) int { return int(v.pos[i]) }

// CommitLive replaces the counts of the opinions listed in idx with cnt
// (cnt[j] becomes the count of opinion idx[j]) and updates every
// aggregate in O(len(idx)). It is the engines' bulk per-round commit:
// one round of a dynamics redistributes mass among the currently live
// opinions only, so idx is typically the LiveIndices view itself
// (aliasing it is explicitly supported), or a copy extended with a
// revivable slot such as the Undecided state.
//
// Requirements (panic on violation): idx is strictly increasing and in
// range, len(idx) == len(cnt), every currently-live opinion appears in
// idx (mass cannot teleport into unlisted slots), all cnt[j] ≥ 0, and
// the new total is positive. Entries with cnt[j] == 0 leave the live
// set; listed extinct opinions with cnt[j] > 0 join it.
func (v *Vector) CommitLive(idx []int32, cnt []int64) {
	if len(idx) != len(cnt) {
		panic("population: CommitLive len(idx) != len(cnt)")
	}
	if len(idx) == 0 {
		panic("population: CommitLive with empty index list")
	}
	// Every live opinion must be listed: walk the two increasing
	// sequences in lockstep. When idx IS the LiveIndices view — the
	// common engine hot path — the walk would trivially pass, so it is
	// skipped.
	if &idx[0] != &v.live[0] || len(idx) != len(v.live) {
		j := 0
		for _, i := range v.live {
			for j < len(idx) && idx[j] < i {
				j++
			}
			if j >= len(idx) || idx[j] != i {
				panic(fmt.Sprintf("population: CommitLive omits live opinion %d", i))
			}
		}
	}
	var n, sumSq int64
	newLive := v.live[:0]
	newCnt := v.liveCnt[:0]
	prev := int32(-1)
	for j, i := range idx {
		if i <= prev || int(i) >= len(v.counts) {
			panic(fmt.Sprintf("population: CommitLive index %d out of order or range", i))
		}
		prev = i
		c := cnt[j]
		if c < 0 {
			panic(fmt.Sprintf("population: CommitLive negative count %d for opinion %d", c, i))
		}
		v.counts[i] = c
		if c == 0 {
			// Listed entries going (or staying) extinct leave the live
			// set; unlisted entries were already extinct with pos -1.
			v.pos[i] = -1
			continue
		}
		v.pos[i] = int32(len(newLive))
		// Appending stays behind the read cursor even when idx aliases
		// v.live (or cnt aliases v.liveCnt): at step j at most j
		// elements have been kept.
		newLive = append(newLive, i)
		newCnt = append(newCnt, c)
		n += c
		sumSq += c * c
	}
	if n == 0 {
		panic("population: CommitLive with zero total population")
	}
	if n > MaxN {
		panic(fmt.Sprintf("population: CommitLive population %d exceeds MaxN", n))
	}
	v.live = newLive
	v.liveCnt = newCnt
	v.n = n
	v.sumSq = sumSq
}

// Move transfers m vertices from opinion from to opinion to, updating
// the aggregates incrementally: O(1) unless the live set changes (an
// opinion dying or being revived costs O(live) to keep the live slice
// sorted). It panics if m is negative or exceeds from's count. N is
// unchanged. The adversary strategies use it to corrupt configurations
// without an O(k) SetAll.
func (v *Vector) Move(from, to int, m int64) {
	if m < 0 {
		panic(fmt.Sprintf("population: Move negative m = %d", m))
	}
	if m == 0 || from == to {
		return
	}
	cf, ct := v.counts[from], v.counts[to]
	if cf < m {
		panic(fmt.Sprintf("population: Move %d from opinion %d holding %d", m, from, cf))
	}
	nf, nt := cf-m, ct+m
	v.counts[from] = nf
	v.counts[to] = nt
	v.sumSq += nf*nf - cf*cf + nt*nt - ct*ct
	if nf > 0 {
		v.liveCnt[v.pos[from]] = nf
	} else {
		v.removeLive(int32(from))
	}
	if ct == 0 {
		v.insertLive(int32(to))
	}
	v.liveCnt[v.pos[to]] = nt
}

// removeLive deletes opinion i from the sorted live slice.
func (v *Vector) removeLive(i int32) {
	p := v.pos[i]
	copy(v.live[p:], v.live[p+1:])
	copy(v.liveCnt[p:], v.liveCnt[p+1:])
	v.live = v.live[:len(v.live)-1]
	v.liveCnt = v.liveCnt[:len(v.liveCnt)-1]
	for q := p; q < int32(len(v.live)); q++ {
		v.pos[v.live[q]] = q
	}
	v.pos[i] = -1
}

// insertLive adds opinion i to the sorted live slice (its liveCnt slot
// is left for the caller to set).
func (v *Vector) insertLive(i int32) {
	p := len(v.live)
	v.live = append(v.live, 0)
	v.liveCnt = append(v.liveCnt, 0)
	for p > 0 && v.live[p-1] > i {
		v.live[p] = v.live[p-1]
		v.liveCnt[p] = v.liveCnt[p-1]
		v.pos[v.live[p]] = int32(p)
		p--
	}
	v.live[p] = i
	v.pos[i] = int32(p)
}

// Alpha returns α(i) = Count(i)/N, the fraction supporting opinion i.
func (v *Vector) Alpha(i int) float64 {
	return float64(v.counts[i]) / float64(v.n)
}

// SumSquares returns Σ_i Count(i)², maintained incrementally (O(1)).
func (v *Vector) SumSquares() int64 { return v.sumSq }

// Gamma returns γ = Σ_i α(i)², the squared ℓ²-norm of the fraction
// vector (paper Definition 3.2(iii)). γ ∈ [1/k, 1] always, with γ = 1
// exactly at consensus. It is O(1): the integer Σc² aggregate is
// maintained across mutations, so a round's done-check and the
// trajectory observers cost nothing extra.
func (v *Vector) Gamma() float64 {
	nf := float64(v.n)
	return float64(v.sumSq) / (nf * nf)
}

// SumCubes returns ‖α‖₃³ = Σ_i α(i)³, used by the Lemma 4.1 variance
// bounds. O(live).
func (v *Vector) SumCubes() float64 {
	nf := float64(v.n)
	sum := 0.0
	for _, c := range v.liveCnt {
		a := float64(c) / nf
		sum += a * a * a
	}
	return sum
}

// Bias returns δ(i,j) = α(i) − α(j) (paper Definition 3.2(ii)).
func (v *Vector) Bias(i, j int) float64 {
	return float64(v.counts[i]-v.counts[j]) / float64(v.n)
}

// Live returns the number of opinions with at least one supporter. O(1).
func (v *Vector) Live() int { return len(v.live) }

// MaxOpinion returns the index and count of the most-supported opinion
// (lowest index on ties). O(live).
func (v *Vector) MaxOpinion() (opinion int, count int64) {
	for j, c := range v.liveCnt {
		if c > count {
			opinion, count = int(v.live[j]), c
		}
	}
	return opinion, count
}

// TopTwo returns the indices of the two most-supported opinions
// (first >= second in count; ties broken by lower index). K must be
// at least 2. O(live); when fewer than two opinions are live the
// remaining slots are filled with the lowest-index extinct opinions,
// matching a dense scan.
func (v *Vector) TopTwo() (first, second int) {
	if len(v.counts) < 2 {
		panic("population: TopTwo needs K >= 2")
	}
	first, second = -1, -1
	var fc, sc int64
	for j, c := range v.liveCnt {
		i := int(v.live[j])
		switch {
		case first == -1 || c > fc:
			second, sc = first, fc
			first, fc = i, c
		case second == -1 || c > sc:
			second, sc = i, c
		}
	}
	// Live is never empty, but a consensus state leaves second unset; a
	// dense scan would have returned the lowest-index extinct opinion.
	if second == -1 {
		for i := range v.counts {
			if i != first {
				second = i
				break
			}
		}
	}
	return first, second
}

// Consensus reports whether every vertex supports the same opinion and,
// if so, which one. O(1): consensus is exactly one live opinion.
func (v *Vector) Consensus() (opinion int, ok bool) {
	if len(v.live) == 1 {
		return int(v.live[0]), true
	}
	return 0, false
}

// Validate checks the representation invariants, including the sparse
// aggregates. Engines call this in tests and after complex in-place
// updates.
func (v *Vector) Validate() error {
	var n, sumSq int64
	live := 0
	for i, c := range v.counts {
		if c < 0 {
			return fmt.Errorf("%w: negative count %d for opinion %d", ErrInvalid, c, i)
		}
		if c > 0 {
			if live >= len(v.live) || v.live[live] != int32(i) {
				return fmt.Errorf("%w: live slice out of sync at opinion %d", ErrInvalid, i)
			}
			if v.liveCnt[live] != c {
				return fmt.Errorf("%w: liveCnt[%d] = %d, want %d", ErrInvalid, live, v.liveCnt[live], c)
			}
			if v.pos[i] != int32(live) {
				return fmt.Errorf("%w: pos[%d] = %d, want %d", ErrInvalid, i, v.pos[i], live)
			}
			live++
			n += c
			sumSq += c * c
		} else if v.pos[i] != -1 {
			return fmt.Errorf("%w: extinct opinion %d has pos %d", ErrInvalid, i, v.pos[i])
		}
	}
	if live != len(v.live) {
		return fmt.Errorf("%w: live slice has %d entries, want %d", ErrInvalid, len(v.live), live)
	}
	if n != v.n {
		return fmt.Errorf("%w: counts sum to %d, recorded N is %d", ErrInvalid, n, v.n)
	}
	if sumSq != v.sumSq {
		return fmt.Errorf("%w: counts square-sum to %d, recorded Σc² is %d", ErrInvalid, sumSq, v.sumSq)
	}
	if n == 0 {
		return fmt.Errorf("%w: zero total population", ErrInvalid)
	}
	return nil
}

// String renders a compact representation for logs and error messages.
func (v *Vector) String() string {
	return fmt.Sprintf("population.Vector{n=%d k=%d live=%d γ=%.4g}", v.n, v.K(), v.Live(), v.Gamma())
}
