// Package population represents opinion configurations of synchronous
// consensus dynamics: the count vector (c(1), ..., c(k)) of how many of
// the n vertices currently support each opinion, together with the
// derived quantities the paper analyzes — the fractions α(i), the
// squared ℓ²-norm γ = Σ α(i)², and pairwise biases δ(i,j) = α(i)−α(j)
// (paper Definition 3.2).
//
// On the complete graph with self-loops the count vector is a complete
// description of the process state, which is what makes the exact
// O(k)-per-round engine in internal/core possible.
package population

import (
	"errors"
	"fmt"
)

// Vector is an opinion configuration: counts[i] vertices hold opinion i,
// for i in [0, K). The representation maintains the invariant that all
// counts are non-negative and sum to N.
//
// Opinions are indexed from 0 here; the paper indexes them from 1.
type Vector struct {
	counts []int64
	n      int64
}

// ErrInvalid reports a configuration that violates the count invariants.
var ErrInvalid = errors.New("population: invalid configuration")

// FromCounts builds a Vector from an explicit count slice. The slice is
// copied. It returns an error if counts is empty, any entry is
// negative, or the total is zero.
func FromCounts(counts []int64) (*Vector, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("%w: no opinions", ErrInvalid)
	}
	var n int64
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("%w: negative count %d for opinion %d", ErrInvalid, c, i)
		}
		n += c
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: zero total population", ErrInvalid)
	}
	return &Vector{counts: append([]int64(nil), counts...), n: n}, nil
}

// MustFromCounts is FromCounts that panics on error; for tests and
// package-internal construction of known-valid configurations.
func MustFromCounts(counts []int64) *Vector {
	v, err := FromCounts(counts)
	if err != nil {
		panic(err)
	}
	return v
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	return &Vector{counts: append([]int64(nil), v.counts...), n: v.n}
}

// CopyFrom overwrites the receiver with src's configuration. The two
// vectors must have the same K.
func (v *Vector) CopyFrom(src *Vector) {
	if len(v.counts) != len(src.counts) {
		panic("population: CopyFrom with mismatched K")
	}
	copy(v.counts, src.counts)
	v.n = src.n
}

// K returns the number of opinion slots (including extinct opinions).
func (v *Vector) K() int { return len(v.counts) }

// N returns the number of vertices.
func (v *Vector) N() int64 { return v.n }

// Count returns the number of vertices supporting opinion i.
func (v *Vector) Count(i int) int64 { return v.counts[i] }

// Counts returns the backing count slice as a mutable view. It exists
// for the dynamics engines in internal/core and internal/async, which
// update configurations in place on their hot path; callers that
// mutate it must preserve the sum-to-N, non-negative invariant (or
// call SetAll to re-establish it). All other callers should treat the
// result as read-only.
func (v *Vector) Counts() []int64 { return v.counts }

// SetAll replaces the counts (length must equal K) and recomputes N.
// It panics if the invariants are violated; engines use it after bulk
// in-place updates.
func (v *Vector) SetAll(counts []int64) {
	if len(counts) != len(v.counts) {
		panic("population: SetAll with mismatched K")
	}
	var n int64
	for i, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("population: SetAll negative count %d at %d", c, i))
		}
		n += c
	}
	copy(v.counts, counts)
	v.n = n
}

// Alpha returns α(i) = Count(i)/N, the fraction supporting opinion i.
func (v *Vector) Alpha(i int) float64 {
	return float64(v.counts[i]) / float64(v.n)
}

// Gamma returns γ = Σ_i α(i)², the squared ℓ²-norm of the fraction
// vector (paper Definition 3.2(iii)). γ ∈ [1/k, 1] always, with γ = 1
// exactly at consensus.
func (v *Vector) Gamma() float64 {
	nf := float64(v.n)
	sum := 0.0
	for _, c := range v.counts {
		if c == 0 {
			continue
		}
		a := float64(c) / nf
		sum += a * a
	}
	return sum
}

// SumCubes returns ‖α‖₃³ = Σ_i α(i)³, used by the Lemma 4.1 variance
// bounds.
func (v *Vector) SumCubes() float64 {
	nf := float64(v.n)
	sum := 0.0
	for _, c := range v.counts {
		if c == 0 {
			continue
		}
		a := float64(c) / nf
		sum += a * a * a
	}
	return sum
}

// Bias returns δ(i,j) = α(i) − α(j) (paper Definition 3.2(ii)).
func (v *Vector) Bias(i, j int) float64 {
	return float64(v.counts[i]-v.counts[j]) / float64(v.n)
}

// Live returns the number of opinions with at least one supporter.
func (v *Vector) Live() int {
	live := 0
	for _, c := range v.counts {
		if c > 0 {
			live++
		}
	}
	return live
}

// MaxOpinion returns the index and count of the most-supported opinion
// (lowest index on ties).
func (v *Vector) MaxOpinion() (opinion int, count int64) {
	for i, c := range v.counts {
		if c > count {
			opinion, count = i, c
		}
	}
	return opinion, count
}

// TopTwo returns the indices of the two most-supported opinions
// (first >= second in count; ties broken by lower index). K must be
// at least 2.
func (v *Vector) TopTwo() (first, second int) {
	if len(v.counts) < 2 {
		panic("population: TopTwo needs K >= 2")
	}
	first, second = 0, 1
	if v.counts[1] > v.counts[0] {
		first, second = 1, 0
	}
	for i := 2; i < len(v.counts); i++ {
		switch {
		case v.counts[i] > v.counts[first]:
			second = first
			first = i
		case v.counts[i] > v.counts[second]:
			second = i
		}
	}
	return first, second
}

// Consensus reports whether every vertex supports the same opinion and,
// if so, which one.
func (v *Vector) Consensus() (opinion int, ok bool) {
	for i, c := range v.counts {
		if c == v.n {
			return i, true
		}
		if c != 0 {
			return 0, false
		}
	}
	return 0, false
}

// Validate checks the representation invariants. Engines call this in
// tests and after complex in-place updates.
func (v *Vector) Validate() error {
	var n int64
	for i, c := range v.counts {
		if c < 0 {
			return fmt.Errorf("%w: negative count %d for opinion %d", ErrInvalid, c, i)
		}
		n += c
	}
	if n != v.n {
		return fmt.Errorf("%w: counts sum to %d, recorded N is %d", ErrInvalid, n, v.n)
	}
	if n == 0 {
		return fmt.Errorf("%w: zero total population", ErrInvalid)
	}
	return nil
}

// String renders a compact representation for logs and error messages.
func (v *Vector) String() string {
	return fmt.Sprintf("population.Vector{n=%d k=%d live=%d γ=%.4g}", v.n, v.K(), v.Live(), v.Gamma())
}
