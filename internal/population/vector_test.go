package population

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestFromCountsValidation(t *testing.T) {
	cases := []struct {
		name   string
		counts []int64
		wantOK bool
	}{
		{"nil", nil, false},
		{"empty", []int64{}, false},
		{"negative", []int64{3, -1}, false},
		{"all zero", []int64{0, 0}, false},
		{"ok", []int64{1, 0, 2}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v, err := FromCounts(c.counts)
			if c.wantOK && err != nil {
				t.Fatalf("unexpected error %v", err)
			}
			if !c.wantOK {
				if err == nil {
					t.Fatal("expected error")
				}
				if !errors.Is(err, ErrInvalid) {
					t.Fatalf("error %v does not wrap ErrInvalid", err)
				}
				return
			}
			if err := v.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
}

func TestFromCountsCopies(t *testing.T) {
	src := []int64{1, 2}
	v := MustFromCounts(src)
	src[0] = 99
	if v.Count(0) != 1 {
		t.Fatal("FromCounts did not copy its input")
	}
}

func TestBasicQuantities(t *testing.T) {
	v := MustFromCounts([]int64{6, 3, 1, 0})
	if v.N() != 10 || v.K() != 4 {
		t.Fatalf("N=%d K=%d", v.N(), v.K())
	}
	if got := v.Alpha(0); got != 0.6 {
		t.Errorf("Alpha(0) = %v", got)
	}
	wantGamma := 0.36 + 0.09 + 0.01
	if got := v.Gamma(); math.Abs(got-wantGamma) > 1e-12 {
		t.Errorf("Gamma = %v, want %v", got, wantGamma)
	}
	wantCubes := 0.216 + 0.027 + 0.001
	if got := v.SumCubes(); math.Abs(got-wantCubes) > 1e-12 {
		t.Errorf("SumCubes = %v, want %v", got, wantCubes)
	}
	if got := v.Bias(0, 1); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Bias = %v", got)
	}
	if got := v.Live(); got != 3 {
		t.Errorf("Live = %d", got)
	}
	if op, c := v.MaxOpinion(); op != 0 || c != 6 {
		t.Errorf("MaxOpinion = (%d, %d)", op, c)
	}
	if _, ok := v.Consensus(); ok {
		t.Error("Consensus reported on non-consensus state")
	}
}

func TestConsensusDetection(t *testing.T) {
	v := MustFromCounts([]int64{0, 5, 0})
	op, ok := v.Consensus()
	if !ok || op != 1 {
		t.Fatalf("Consensus = (%d, %v), want (1, true)", op, ok)
	}
}

func TestTopTwo(t *testing.T) {
	cases := []struct {
		counts        []int64
		first, second int
	}{
		{[]int64{5, 3, 4}, 0, 2},
		{[]int64{1, 9, 2, 8}, 1, 3},
		{[]int64{4, 4}, 0, 1},
		{[]int64{0, 0, 7}, 2, 0},
	}
	for _, c := range cases {
		v := MustFromCounts(c.counts)
		f, s := v.TopTwo()
		if f != c.first || s != c.second {
			t.Errorf("TopTwo(%v) = (%d,%d), want (%d,%d)", c.counts, f, s, c.first, c.second)
		}
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	v := MustFromCounts([]int64{2, 3})
	c := v.Clone()
	c.Counts()[0] = 99
	if v.Count(0) != 2 {
		t.Fatal("Clone shares backing storage")
	}
	dst := MustFromCounts([]int64{1, 1})
	dst.CopyFrom(v)
	if dst.Count(0) != 2 || dst.Count(1) != 3 || dst.N() != 5 {
		t.Fatalf("CopyFrom result %v", dst.Counts())
	}
}

func TestSetAll(t *testing.T) {
	v := MustFromCounts([]int64{1, 1})
	v.SetAll([]int64{4, 6})
	if v.N() != 10 || v.Count(1) != 6 {
		t.Fatalf("SetAll result N=%d counts=%v", v.N(), v.Counts())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetAll with negative count did not panic")
			}
		}()
		v.SetAll([]int64{-1, 2})
	}()
}

func TestGammaBoundsProperty(t *testing.T) {
	// γ ∈ [1/live, 1] for every valid configuration (Cauchy–Schwarz).
	f := func(raw []uint16) bool {
		counts := make([]int64, 0, len(raw))
		var total int64
		for _, x := range raw {
			counts = append(counts, int64(x))
			total += int64(x)
		}
		if len(counts) == 0 || total == 0 {
			return true
		}
		v := MustFromCounts(counts)
		g := v.Gamma()
		live := float64(v.Live())
		return g <= 1+1e-12 && g >= 1/live-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBalanced(t *testing.T) {
	v := Balanced(10, 3)
	want := []int64{4, 3, 3}
	for i, c := range want {
		if v.Count(i) != c {
			t.Fatalf("Balanced(10,3) = %v, want %v", v.Counts(), want)
		}
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	// γ of a perfectly balanced configuration is exactly 1/k.
	v = Balanced(1000, 8)
	if g := v.Gamma(); math.Abs(g-1.0/8) > 1e-12 {
		t.Errorf("balanced gamma = %v", g)
	}
}

func TestBalancedPanics(t *testing.T) {
	for _, c := range []struct {
		n int64
		k int
	}{{5, 0}, {5, 6}, {0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Balanced(%d,%d) did not panic", c.n, c.k)
				}
			}()
			Balanced(c.n, c.k)
		}()
	}
}

func TestPlantedBias(t *testing.T) {
	v := PlantedBias(100, 4, 12)
	if v.Count(0) != 25+12 {
		t.Fatalf("opinion 0 count = %d", v.Count(0))
	}
	if v.N() != 100 {
		t.Fatalf("N = %d", v.N())
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	// Bias over every rival is at least 12/100 - rounding.
	for j := 1; j < 4; j++ {
		if b := v.Bias(0, j); b < 0.12-0.02 {
			t.Errorf("bias over %d = %v too small", j, b)
		}
	}
}

func TestPlantedBiasExhaustsDonors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when extra exceeds donor supply")
		}
	}()
	PlantedBias(10, 2, 6) // opinion 1 has only 5 to give
}

func TestFromFractions(t *testing.T) {
	v, err := FromFractions(10, []float64{0.5, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 3, 2} // largest remainder breaks the .5 tie to index 1
	got := v.Counts()
	var sum int64
	for i := range got {
		sum += got[i]
	}
	if sum != 10 {
		t.Fatalf("counts %v do not sum to 10", got)
	}
	if got[0] != want[0] {
		t.Fatalf("counts %v, want leading 5", got)
	}
	if _, err := FromFractions(10, []float64{-1, 2}); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := FromFractions(10, []float64{0, 0}); err == nil {
		t.Error("zero mass accepted")
	}
	if _, err := FromFractions(10, []float64{math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestFromFractionsProportionalProperty(t *testing.T) {
	f := func(rawN uint16, raw []uint8) bool {
		n := int64(rawN) + int64(len(raw)) + 1
		if len(raw) == 0 {
			return true
		}
		fracs := make([]float64, len(raw))
		total := 0.0
		for i, x := range raw {
			fracs[i] = float64(x)
			total += fracs[i]
		}
		if total == 0 {
			fracs[0] = 1
			total = 1
		}
		v, err := FromFractions(n, fracs)
		if err != nil {
			return false
		}
		if v.N() != n {
			return false
		}
		// Largest remainder keeps every count within 1 of proportional.
		for i := range fracs {
			exact := fracs[i] / total * float64(n)
			if math.Abs(float64(v.Count(i))-exact) > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfAndGeometric(t *testing.T) {
	z, err := Zipf(1000, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if z.Count(0) <= z.Count(9) {
		t.Errorf("Zipf counts not decreasing: %v", z.Counts())
	}
	flat, err := Zipf(1000, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g := flat.Gamma(); math.Abs(g-0.1) > 1e-9 {
		t.Errorf("Zipf(s=0) gamma = %v, want 0.1", g)
	}

	geo, err := Geometric(1000, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if geo.Count(0) < 2*geo.Count(1)-2 {
		t.Errorf("Geometric ratio not respected: %v", geo.Counts())
	}
	if _, err := Geometric(1000, 10, 0); err == nil {
		t.Error("ratio 0 accepted")
	}
	if _, err := Geometric(1000, 10, 1.5); err == nil {
		t.Error("ratio > 1 accepted")
	}
	if _, err := Zipf(5, 10, 1); err == nil {
		t.Error("k > n accepted")
	}
}

func TestTwoLeaders(t *testing.T) {
	v, err := TwoLeaders(1000, 10, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Alpha(0) + v.Alpha(1); math.Abs(got-0.5) > 0.01 {
		t.Errorf("leader mass = %v, want 0.5", got)
	}
	if got := v.Bias(0, 1); math.Abs(got-0.1) > 0.01 {
		t.Errorf("leader bias = %v, want 0.1", got)
	}
	// Followers share the rest evenly.
	if c2, c9 := v.Count(2), v.Count(9); absInt64(c2-c9) > 1 {
		t.Errorf("followers unbalanced: %d vs %d", c2, c9)
	}
	if _, err := TwoLeaders(1000, 10, 0, 0); err == nil {
		t.Error("zero topFrac accepted")
	}
	if _, err := TwoLeaders(1000, 10, 0.5, 0.6); err == nil {
		t.Error("bias > topFrac accepted")
	}
	// k = 2 special case puts everything on the leaders.
	v2, err := TwoLeaders(100, 2, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if v2.N() != 100 || v2.Count(0)+v2.Count(1) != 100 {
		t.Errorf("k=2 TwoLeaders = %v", v2.Counts())
	}
}

func absInt64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
