package population

import (
	"fmt"
	"math"
	"sort"
)

// Balanced returns the most balanced configuration of n vertices over k
// opinions: every opinion gets ⌊n/k⌋ supporters and the first n mod k
// opinions one extra. This is the worst case for consensus (γ₀ = 1/k
// up to rounding) and the initial configuration of the Theorem 2.7
// lower-bound experiments. It panics unless 1 <= k <= n.
func Balanced(n int64, k int) *Vector {
	if k < 1 || int64(k) > n {
		panic(fmt.Sprintf("population: Balanced needs 1 <= k <= n, got k=%d n=%d", k, n))
	}
	counts := make([]int64, k)
	base := n / int64(k)
	extra := n % int64(k)
	for i := range counts {
		counts[i] = base
		if int64(i) < extra {
			counts[i]++
		}
	}
	return mustFromOwnedCounts(counts)
}

// PlantedBias returns a balanced configuration in which opinion 0 has
// been given extra additional supporters, taken round-robin from the
// other opinions. This realizes the Theorem 2.6 plurality-consensus
// initial condition: bias δ(0, j) ≈ extra/n over every rival j.
// It panics unless 2 <= k <= n, 0 <= extra, and the donors can afford
// the transfer.
func PlantedBias(n int64, k int, extra int64) *Vector {
	if k < 2 || int64(k) > n {
		panic(fmt.Sprintf("population: PlantedBias needs 2 <= k <= n, got k=%d n=%d", k, n))
	}
	if extra < 0 {
		panic("population: PlantedBias with negative extra")
	}
	counts := Balanced(n, k).counts
	remaining := extra
	for remaining > 0 {
		moved := false
		for i := 1; i < k && remaining > 0; i++ {
			if counts[i] > 0 {
				counts[i]--
				counts[0]++
				remaining--
				moved = true
			}
		}
		if !moved {
			panic("population: PlantedBias extra exceeds donor supply")
		}
	}
	return mustFromOwnedCounts(counts)
}

// FromFractions rounds the fraction vector fracs (non-negative, summing
// to anything positive; normalized internally) to an integer
// configuration of n vertices using the largest-remainder method, so
// the result is within one vertex of proportional for every opinion.
func FromFractions(n int64, fracs []float64) (*Vector, error) {
	if len(fracs) == 0 {
		return nil, fmt.Errorf("%w: no opinions", ErrInvalid)
	}
	total := 0.0
	for i, f := range fracs {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("%w: bad fraction %v at %d", ErrInvalid, f, i)
		}
		total += f
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: zero total fraction", ErrInvalid)
	}
	type rem struct {
		idx  int
		frac float64
	}
	counts := make([]int64, len(fracs))
	rems := make([]rem, 0, len(fracs))
	var assigned int64
	for i, f := range fracs {
		exact := f / total * float64(n)
		fl := math.Floor(exact)
		counts[i] = int64(fl)
		assigned += counts[i]
		rems = append(rems, rem{idx: i, frac: exact - fl})
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; assigned < n; i++ {
		counts[rems[i%len(rems)].idx]++
		assigned++
	}
	return FromCounts(counts)
}

// Zipf returns a configuration whose fractions follow a Zipf law with
// exponent s: α(i) ∝ 1/(i+1)^s. Larger s concentrates mass on the
// leading opinions (large γ₀); s = 0 reduces to Balanced. Used to
// sweep γ₀ in the Theorem 2.1 experiments.
func Zipf(n int64, k int, s float64) (*Vector, error) {
	if k < 1 || int64(k) > n {
		return nil, fmt.Errorf("%w: Zipf needs 1 <= k <= n, got k=%d n=%d", ErrInvalid, k, n)
	}
	fracs := make([]float64, k)
	for i := range fracs {
		fracs[i] = math.Pow(float64(i+1), -s)
	}
	return FromFractions(n, fracs)
}

// Geometric returns a configuration whose fractions decay
// geometrically: α(i) ∝ ratio^i for 0 < ratio <= 1. ratio = 1 reduces
// to Balanced; small ratios give γ₀ close to (1-ratio)²/(1-ratio²)
// independent of k.
func Geometric(n int64, k int, ratio float64) (*Vector, error) {
	if k < 1 || int64(k) > n {
		return nil, fmt.Errorf("%w: Geometric needs 1 <= k <= n, got k=%d n=%d", ErrInvalid, k, n)
	}
	if ratio <= 0 || ratio > 1 || math.IsNaN(ratio) {
		return nil, fmt.Errorf("%w: Geometric ratio %v out of (0, 1]", ErrInvalid, ratio)
	}
	fracs := make([]float64, k)
	w := 1.0
	for i := range fracs {
		fracs[i] = w
		w *= ratio
	}
	return FromFractions(n, fracs)
}

// TwoLeaders returns a configuration in which opinions 0 and 1 jointly
// hold topFrac of the population — opinion 0 holding bias more
// fraction than opinion 1 — and the remaining mass is spread evenly
// over opinions 2..k-1. This is the initial condition for the
// bias-amplification experiments (Lemmas 5.5 and 5.10: two strong
// opinions, small or zero bias between them).
func TwoLeaders(n int64, k int, topFrac, bias float64) (*Vector, error) {
	if k < 2 || int64(k) > n {
		return nil, fmt.Errorf("%w: TwoLeaders needs 2 <= k <= n, got k=%d n=%d", ErrInvalid, k, n)
	}
	if topFrac <= 0 || topFrac > 1 || bias < 0 || bias > topFrac {
		return nil, fmt.Errorf("%w: TwoLeaders topFrac=%v bias=%v out of range", ErrInvalid, topFrac, bias)
	}
	fracs := make([]float64, k)
	fracs[0] = topFrac/2 + bias/2
	fracs[1] = topFrac/2 - bias/2
	if k > 2 {
		rest := (1 - topFrac) / float64(k-2)
		for i := 2; i < k; i++ {
			fracs[i] = rest
		}
	} else {
		// With k == 2 all mass is on the two leaders.
		scale := 1 / topFrac
		fracs[0] *= scale
		fracs[1] *= scale
	}
	return FromFractions(n, fracs)
}
