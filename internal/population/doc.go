// Package population represents opinion configurations of synchronous
// consensus dynamics: the count vector (c(1), ..., c(k)) of how many of
// the n vertices currently support each opinion, together with the
// derived quantities the paper analyzes — the fractions α(i), the
// squared ℓ²-norm γ = Σ α(i)², and pairwise biases δ(i,j) = α(i)−α(j)
// (paper Definition 3.2).
//
// On the complete graph with self-loops the count vector is a complete
// description of the process state, which is what makes the exact
// count-space engine in internal/core possible. Because extinct
// opinions can never return under the paper's dynamics (validity,
// Eq. (5)/(6)), the live set shrinks monotonically from k to 1 over a
// run; Vector therefore maintains a compacted slice of live opinion
// indices plus incrementally updated aggregates (N, Σc², live count),
// so that Gamma, Live and Consensus are O(1), MaxOpinion and SumCubes
// are O(live), and the engines update a round in O(live) via CommitLive
// instead of O(k) via SetAll.
//
// The contract above is owned by DESIGN.md §"The sparse live-opinion
// engine".
package population
