package population

import (
	"math"
	"testing"

	"plurality/internal/rng"
)

// recount builds a fresh Vector from v's dense counts, giving
// from-scratch values for every aggregate the sparse representation
// maintains incrementally.
func recount(v *Vector) *Vector {
	w, err := FromCounts(v.Counts())
	if err != nil {
		panic(err)
	}
	return w
}

// checkAggregates asserts that v's incrementally maintained aggregates
// agree with a from-scratch recount.
func checkAggregates(t *testing.T, v *Vector) {
	t.Helper()
	if err := v.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	w := recount(v)
	if v.N() != w.N() {
		t.Fatalf("N = %d, recount %d", v.N(), w.N())
	}
	if v.Live() != w.Live() {
		t.Fatalf("Live = %d, recount %d", v.Live(), w.Live())
	}
	if v.SumSquares() != w.SumSquares() {
		t.Fatalf("SumSquares = %d, recount %d", v.SumSquares(), w.SumSquares())
	}
	if math.Abs(v.Gamma()-w.Gamma()) > 1e-15 {
		t.Fatalf("Gamma = %v, recount %v", v.Gamma(), w.Gamma())
	}
	vo, vc := v.MaxOpinion()
	wo, wc := w.MaxOpinion()
	if vo != wo || vc != wc {
		t.Fatalf("MaxOpinion = (%d,%d), recount (%d,%d)", vo, vc, wo, wc)
	}
	vop, vok := v.Consensus()
	wop, wok := w.Consensus()
	if vop != wop || vok != wok {
		t.Fatalf("Consensus = (%d,%v), recount (%d,%v)", vop, vok, wop, wok)
	}
	live := v.LiveIndices()
	liveCnt := v.LiveCounts()
	for j, i := range live {
		if liveCnt[j] != v.Count(int(i)) {
			t.Fatalf("LiveCounts[%d] = %d, Count(%d) = %d", j, liveCnt[j], i, v.Count(int(i)))
		}
		if v.LivePos(int(i)) != j {
			t.Fatalf("LivePos(%d) = %d, want %d", i, v.LivePos(int(i)), j)
		}
	}
}

// randomCommit applies one random CommitLive to v: the live set plus
// possibly one revivable extinct slot, with random new counts that keep
// the total positive.
func randomCommit(t *testing.T, r *rng.Rand, v *Vector) {
	t.Helper()
	live := v.LiveIndices()
	idx := make([]int32, 0, len(live)+1)
	// Optionally splice one extinct slot into the committed set, as the
	// Undecided dynamics does with its revivable undecided state.
	extinct := int32(-1)
	if v.Live() < v.K() && r.Intn(2) == 0 {
		for i := 0; i < v.K(); i++ {
			if v.Count(i) == 0 && r.Intn(v.K()-i) == 0 {
				extinct = int32(i)
				break
			}
		}
	}
	for _, i := range live {
		if extinct >= 0 && extinct < i {
			idx = append(idx, extinct)
			extinct = -1
		}
		idx = append(idx, i)
	}
	if extinct >= 0 {
		idx = append(idx, extinct)
	}
	cnt := make([]int64, len(idx))
	var total int64
	for j := range cnt {
		switch r.Intn(4) {
		case 0:
			cnt[j] = 0
		default:
			cnt[j] = r.Int63n(50)
		}
		total += cnt[j]
	}
	if total == 0 {
		cnt[r.Intn(len(cnt))] = 1 + r.Int63n(10)
	}
	v.CommitLive(idx, cnt)
}

// TestCommitLiveAggregatesProperty drives random CommitLive sequences
// (interleaved with Moves and SetAlls) and asserts after every
// mutation that the live set, Σc², N, and the derived queries agree
// with a from-scratch recount.
func TestCommitLiveAggregatesProperty(t *testing.T) {
	r := rng.New(20250725)
	for trial := 0; trial < 50; trial++ {
		k := 1 + r.Intn(40)
		counts := make([]int64, k)
		var total int64
		for i := range counts {
			if r.Intn(3) == 0 {
				continue
			}
			counts[i] = r.Int63n(100)
			total += counts[i]
		}
		if total == 0 {
			counts[r.Intn(k)] = 1
		}
		v := MustFromCounts(counts)
		checkAggregates(t, v)
		for step := 0; step < 30; step++ {
			switch r.Intn(5) {
			case 0: // Move between live opinions (possibly killing one)
				if v.Live() >= 2 {
					live := v.LiveIndices()
					from := int(live[r.Intn(len(live))])
					to := int(live[r.Intn(len(live))])
					if from != to {
						v.Move(from, to, r.Int63n(v.Count(from)+1))
					}
				}
			case 1: // Move that may revive an extinct opinion
				if v.Live() < v.K() {
					live := v.LiveIndices()
					from := int(live[r.Intn(len(live))])
					to := -1
					for i := 0; i < v.K(); i++ {
						if v.Count(i) == 0 {
							to = i
							break
						}
					}
					if m := v.Count(from); to >= 0 && m > 1 {
						v.Move(from, to, 1+r.Int63n(m-1))
					}
				}
			case 2: // full dense rewrite
				next := append([]int64(nil), v.Counts()...)
				for i := range next {
					if r.Intn(2) == 0 && v.Count(i) > 0 {
						next[i] = r.Int63n(80)
					}
				}
				var tot int64
				for _, c := range next {
					tot += c
				}
				if tot == 0 {
					next[r.Intn(len(next))] = 5
				}
				v.SetAll(next)
			default:
				randomCommit(t, r, v)
			}
			checkAggregates(t, v)
		}
	}
}

// TestCommitLiveAliasingLiveView exercises the documented hot path:
// passing the LiveIndices view itself as the commit index list.
func TestCommitLiveAliasingLiveView(t *testing.T) {
	v := MustFromCounts([]int64{3, 0, 5, 2, 0, 7})
	live := v.LiveIndices()
	cnt := []int64{6, 0, 1, 4} // opinion 2 dies
	v.CommitLive(live, cnt)
	checkAggregates(t, v)
	want := []int64{6, 0, 0, 1, 0, 4}
	for i, c := range want {
		if v.Count(i) != c {
			t.Fatalf("counts = %v, want %v", v.Counts(), want)
		}
	}
	if v.Live() != 3 {
		t.Fatalf("Live = %d, want 3", v.Live())
	}
}

// TestCommitLivePanics checks the contract violations are caught.
func TestCommitLivePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("length mismatch", func() {
		v := MustFromCounts([]int64{1, 2})
		v.CommitLive([]int32{0, 1}, []int64{3})
	})
	mustPanic("omitted live opinion", func() {
		v := MustFromCounts([]int64{1, 2})
		v.CommitLive([]int32{0}, []int64{3})
	})
	mustPanic("out of order", func() {
		v := MustFromCounts([]int64{1, 2})
		v.CommitLive([]int32{1, 0}, []int64{1, 2})
	})
	mustPanic("negative count", func() {
		v := MustFromCounts([]int64{1, 2})
		v.CommitLive([]int32{0, 1}, []int64{-1, 2})
	})
	mustPanic("zero total", func() {
		v := MustFromCounts([]int64{1, 2})
		v.CommitLive([]int32{0, 1}, []int64{0, 0})
	})
}

// TestMoveAggregates spot-checks Move's incremental updates, including
// kill and revive transitions that restructure the live slice.
func TestMoveAggregates(t *testing.T) {
	v := MustFromCounts([]int64{4, 0, 6})
	v.Move(2, 0, 6) // kills opinion 2
	checkAggregates(t, v)
	if v.Live() != 1 || v.Count(0) != 10 {
		t.Fatalf("after kill: %v", v.Counts())
	}
	v.Move(0, 1, 3) // revives opinion 1
	checkAggregates(t, v)
	if v.Live() != 2 || v.Count(1) != 3 {
		t.Fatalf("after revive: %v", v.Counts())
	}
	if op, ok := v.Consensus(); ok {
		t.Fatalf("consensus reported (%d) on two-opinion state", op)
	}
}

// TestTopTwoMatchesDenseScan compares the sparse TopTwo against a
// brute-force dense implementation over random configurations.
func TestTopTwoMatchesDenseScan(t *testing.T) {
	dense := func(counts []int64) (int, int) {
		first, second := 0, 1
		if counts[1] > counts[0] {
			first, second = 1, 0
		}
		for i := 2; i < len(counts); i++ {
			switch {
			case counts[i] > counts[first]:
				second = first
				first = i
			case counts[i] > counts[second]:
				second = i
			}
		}
		return first, second
	}
	r := rng.New(7)
	for trial := 0; trial < 500; trial++ {
		k := 2 + r.Intn(12)
		counts := make([]int64, k)
		var total int64
		for i := range counts {
			if r.Intn(2) == 0 {
				counts[i] = r.Int63n(6)
				total += counts[i]
			}
		}
		if total == 0 {
			counts[r.Intn(k)] = 1
		}
		v := MustFromCounts(counts)
		gf, gs := v.TopTwo()
		wf, ws := dense(counts)
		if gf != wf || gs != ws {
			t.Fatalf("TopTwo(%v) = (%d,%d), dense scan (%d,%d)", counts, gf, gs, wf, ws)
		}
	}
}

// FuzzCommitLive feeds arbitrary byte-derived commit sequences through
// the sparse representation, checking aggregate consistency after each
// step.
func FuzzCommitLive(f *testing.F) {
	f.Add([]byte{10, 20, 30}, uint64(1))
	f.Add([]byte{0, 1, 0, 255}, uint64(2))
	f.Add([]byte{1}, uint64(3))
	f.Fuzz(func(t *testing.T, raw []byte, seed uint64) {
		if len(raw) == 0 || len(raw) > 64 {
			t.Skip()
		}
		counts := make([]int64, len(raw))
		var total int64
		for i, b := range raw {
			counts[i] = int64(b)
			total += counts[i]
		}
		if total == 0 {
			t.Skip()
		}
		v := MustFromCounts(counts)
		r := rng.New(seed)
		for step := 0; step < 8; step++ {
			randomCommitFuzz(r, v)
			if err := v.Validate(); err != nil {
				t.Fatalf("step %d: %v (state %v)", step, err, v.Counts())
			}
			w := recount(v)
			if v.N() != w.N() || v.SumSquares() != w.SumSquares() || v.Live() != w.Live() {
				t.Fatalf("step %d: aggregates diverged: N %d/%d Σc² %d/%d live %d/%d",
					step, v.N(), w.N(), v.SumSquares(), w.SumSquares(), v.Live(), w.Live())
			}
		}
	})
}

// randomCommitFuzz is randomCommit without the testing.T plumbing.
func randomCommitFuzz(r *rng.Rand, v *Vector) {
	live := v.LiveIndices()
	idx := append([]int32(nil), live...)
	cnt := make([]int64, len(idx))
	var total int64
	for j := range cnt {
		if r.Intn(4) != 0 {
			cnt[j] = r.Int63n(100)
		}
		total += cnt[j]
	}
	if total == 0 {
		cnt[r.Intn(len(cnt))] = 1
	}
	v.CommitLive(idx, cnt)
}
