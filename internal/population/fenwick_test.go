package population

import (
	"math"
	"testing"
	"testing/quick"

	"plurality/internal/rng"
)

func TestFenwickBasics(t *testing.T) {
	counts := []int64{3, 0, 5, 2}
	f := NewFenwick(counts)
	if f.K() != 4 || f.Total() != 10 {
		t.Fatalf("K=%d Total=%d", f.K(), f.Total())
	}
	for i, c := range counts {
		if f.Count(i) != c {
			t.Fatalf("Count(%d) = %d, want %d", i, f.Count(i), c)
		}
	}
	f.Add(1, 4)
	f.Add(2, -5)
	if f.Total() != 9 || f.Count(1) != 4 || f.Count(2) != 0 {
		t.Fatalf("after updates: total=%d counts=%v", f.Total(), f.Counts())
	}
	f.Move(3, 0)
	if f.Count(3) != 1 || f.Count(0) != 4 || f.Total() != 9 {
		t.Fatalf("after move: %v", f.Counts())
	}
	f.Move(0, 0) // no-op
	if f.Count(0) != 4 {
		t.Fatal("self-move changed counts")
	}
}

func TestFenwickPanics(t *testing.T) {
	t.Run("negative build", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		NewFenwick([]int64{1, -1})
	})
	t.Run("zero total", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		NewFenwick([]int64{0, 0})
	})
	t.Run("negative after add", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		f := NewFenwick([]int64{1, 1})
		f.Add(0, -2)
	})
}

func TestFenwickSampleDistribution(t *testing.T) {
	counts := []int64{10, 0, 30, 60}
	f := NewFenwick(counts)
	r := rng.New(42)
	const trials = 200000
	hist := make([]int, len(counts))
	for i := 0; i < trials; i++ {
		hist[f.Sample(r)]++
	}
	if hist[1] != 0 {
		t.Fatalf("zero-count opinion sampled %d times", hist[1])
	}
	for i, c := range counts {
		want := float64(c) / 100
		got := float64(hist[i]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("opinion %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestFenwickSampleAfterUpdates(t *testing.T) {
	f := NewFenwick([]int64{5, 5})
	f.Add(0, -5) // all mass on opinion 1
	r := rng.New(7)
	for i := 0; i < 100; i++ {
		if got := f.Sample(r); got != 1 {
			t.Fatalf("Sample = %d, want 1", got)
		}
	}
}

func TestFenwickMatchesLinearScanProperty(t *testing.T) {
	// Property: for random count vectors and random updates, tree
	// prefix queries implied by Sample agree with the plain counts.
	f := func(raw []uint8, updates []uint16) bool {
		counts := make([]int64, 0, len(raw)+1)
		var total int64
		for _, x := range raw {
			counts = append(counts, int64(x))
			total += int64(x)
		}
		if total == 0 {
			counts = append(counts, 1)
		}
		fw := NewFenwick(counts)
		for _, u := range updates {
			i := int(u) % len(counts)
			if fw.Count(i) > 0 && u%2 == 0 {
				fw.Add(i, -1)
			} else {
				fw.Add(i, 1)
			}
			if fw.Total() == 0 {
				fw.Add(i, 1)
			}
		}
		got := fw.Counts()
		var sum int64
		for _, c := range got {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == fw.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFenwickVector(t *testing.T) {
	f := NewFenwick([]int64{2, 3})
	v := f.Vector()
	if v.N() != 5 || v.Count(1) != 3 {
		t.Fatalf("Vector = %v", v.Counts())
	}
	// The materialized vector must be independent of the tree.
	f.Add(0, 1)
	if v.Count(0) != 2 {
		t.Fatal("Vector shares storage with Fenwick")
	}
}

func TestFenwickSingleOpinion(t *testing.T) {
	f := NewFenwick([]int64{7})
	r := rng.New(1)
	for i := 0; i < 20; i++ {
		if got := f.Sample(r); got != 0 {
			t.Fatalf("Sample = %d", got)
		}
	}
}

func BenchmarkFenwickSampleK1024(b *testing.B) {
	counts := make([]int64, 1024)
	for i := range counts {
		counts[i] = int64(i%13 + 1)
	}
	f := NewFenwick(counts)
	r := rng.New(1)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += f.Sample(r)
	}
	_ = sink
}
