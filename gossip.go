package plurality

import "plurality/internal/trace"

// GossipConfig describes a run of the dynamics as an actual
// message-passing system: one goroutine per node, pull-based opinion
// exchange over channels, synchronous rounds via a two-phase barrier
// (see internal/gossip). Use it to study fault models the count-space
// engine cannot express — crashed nodes and lossy pulls.
type GossipConfig struct {
	// N is the number of nodes. Required.
	N int
	// Protocol must be ThreeMajority(), TwoChoices() or Voter().
	Protocol Protocol
	// Init generates the initial opinion counts. Required.
	Init Init
	// Seed makes executions reproducible.
	Seed uint64
	// Crashed lists node IDs crashed from the start: they answer every
	// pull with a failure and never change opinion.
	Crashed []int
	// LossProb is the per-pull loss probability in [0, 1). A node any
	// of whose pulls fail keeps its opinion for that round.
	LossProb float64
	// MaxRounds bounds the run; 0 means 100000.
	MaxRounds int
	// Trace, if non-nil, samples the coordinator's opinion counts
	// between rounds (after the commit barrier, so the trace is
	// deterministic in Seed regardless of scheduling). Nil costs
	// nothing.
	Trace *trace.Sampler
}

// GossipResult reports how a gossip run ended.
type GossipResult struct {
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// Consensus reports whether all non-crashed nodes agreed.
	Consensus bool
	// Winner is the agreed opinion (or current alive plurality).
	Winner int
	// FinalCounts is the final opinion histogram including any frozen
	// crashed nodes.
	FinalCounts []int64
}

// RunGossip executes the configured dynamics on a real concurrent
// gossip network until all alive nodes agree or the round budget runs
// out. The network is torn down before returning.
//
// Deprecated: use Experiment with Mode: ModeGossip, which adds trials,
// stop conditions and streaming. This wrapper keeps its exact streams:
// cfg.Seed is consumed as the engine seed directly, which is what an
// Experiment derives per trial (rng.DeriveSeed(Seed, i)).
func RunGossip(cfg GossipConfig) (GossipResult, error) {
	c, err := cfg.experiment().compile()
	if err != nil {
		return GossipResult{}, err
	}
	tr, err := c.runFacade(cfg.Seed, cfg.Trace, nil, 0)
	if err != nil {
		return GossipResult{}, err
	}
	return GossipResult{
		Rounds:      int(tr.Rounds),
		Consensus:   tr.Consensus,
		Winner:      tr.Winner,
		FinalCounts: tr.FinalCounts,
	}, nil
}

// experiment translates the legacy GossipConfig into its gossip-mode
// Experiment (the caller-owned Trace sampler stays outside).
func (cfg GossipConfig) experiment() Experiment {
	return Experiment{
		Mode:      ModeGossip,
		N:         int64(cfg.N),
		Protocol:  cfg.Protocol,
		Init:      cfg.Init,
		Seed:      cfg.Seed,
		Crashed:   cfg.Crashed,
		LossProb:  cfg.LossProb,
		MaxRounds: cfg.MaxRounds,
	}
}
