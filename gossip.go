package plurality

import (
	"fmt"

	"plurality/internal/gossip"
	"plurality/internal/trace"
)

// GossipConfig describes a run of the dynamics as an actual
// message-passing system: one goroutine per node, pull-based opinion
// exchange over channels, synchronous rounds via a two-phase barrier
// (see internal/gossip). Use it to study fault models the count-space
// engine cannot express — crashed nodes and lossy pulls.
type GossipConfig struct {
	// N is the number of nodes. Required.
	N int
	// Protocol must be ThreeMajority(), TwoChoices() or Voter().
	Protocol Protocol
	// Init generates the initial opinion counts. Required.
	Init Init
	// Seed makes executions reproducible.
	Seed uint64
	// Crashed lists node IDs crashed from the start: they answer every
	// pull with a failure and never change opinion.
	Crashed []int
	// LossProb is the per-pull loss probability in [0, 1). A node any
	// of whose pulls fail keeps its opinion for that round.
	LossProb float64
	// MaxRounds bounds the run; 0 means 100000.
	MaxRounds int
	// Trace, if non-nil, samples the coordinator's opinion counts
	// between rounds (after the commit barrier, so the trace is
	// deterministic in Seed regardless of scheduling). Nil costs
	// nothing.
	Trace *trace.Sampler
}

// GossipResult reports how a gossip run ended.
type GossipResult struct {
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// Consensus reports whether all non-crashed nodes agreed.
	Consensus bool
	// Winner is the agreed opinion (or current alive plurality).
	Winner int
	// FinalCounts is the final opinion histogram including any frozen
	// crashed nodes.
	FinalCounts []int64
}

// RunGossip executes the configured dynamics on a real concurrent
// gossip network until all alive nodes agree or the round budget runs
// out. The network is torn down before returning.
func RunGossip(cfg GossipConfig) (GossipResult, error) {
	if cfg.N < 1 {
		return GossipResult{}, fmt.Errorf("%w: N = %d", errConfig, cfg.N)
	}
	if cfg.Init.build == nil {
		return GossipResult{}, fmt.Errorf("%w: Init is required", errConfig)
	}
	var rule gossip.Rule
	switch cfg.Protocol.Name() {
	case "3-majority":
		rule = gossip.ThreeMajority
	case "2-choices":
		rule = gossip.TwoChoices
	case "voter":
		rule = gossip.Voter
	default:
		return GossipResult{}, fmt.Errorf("%w: protocol %q has no gossip form", errConfig, cfg.Protocol.Name())
	}
	v, err := cfg.Init.build(int64(cfg.N))
	if err != nil {
		return GossipResult{}, err
	}
	nw, err := gossip.New(gossip.Config{
		N:        cfg.N,
		Rule:     rule,
		Init:     v,
		Seed:     cfg.Seed,
		Crashed:  cfg.Crashed,
		LossProb: cfg.LossProb,
	})
	if err != nil {
		return GossipResult{}, err
	}
	defer nw.Close()
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 100_000
	}
	res := nw.RunTraced(maxRounds, cfg.Trace)
	final := nw.Counts()
	counts := make([]int64, final.K())
	for i := range counts {
		counts[i] = final.Count(i)
	}
	return GossipResult{
		Rounds:      res.Rounds,
		Consensus:   res.Consensus,
		Winner:      int(res.Winner),
		FinalCounts: counts,
	}, nil
}
