package plurality

import (
	"fmt"

	"plurality/internal/async"
	"plurality/internal/rng"
)

// AsyncResult reports how an asynchronous run ended.
type AsyncResult struct {
	// Ticks is the number of single-vertex updates executed.
	Ticks int64
	// Rounds is Ticks/N, the synchronous-equivalent round count.
	Rounds float64
	// Consensus reports whether all vertices agreed within the budget.
	Consensus bool
	// Winner is the final plurality opinion.
	Winner int
}

// RunAsync executes the asynchronous variant of the configured
// dynamics (paper §1.1): one uniformly random vertex updates per tick.
// Supported protocols: ThreeMajority(), TwoChoices(), Voter().
// maxTicks bounds the run (0 means 10^10). Config.Trace, if set,
// samples the configuration at full synchronous-equivalent round
// boundaries (every N ticks).
func RunAsync(cfg Config, maxTicks int64) (AsyncResult, error) {
	if err := cfg.validate(); err != nil {
		return AsyncResult{}, err
	}
	var d async.Dynamics
	switch cfg.Protocol.Name() {
	case "3-majority":
		d = async.ThreeMajority
	case "2-choices":
		d = async.TwoChoices
	case "voter":
		d = async.Voter
	default:
		return AsyncResult{}, fmt.Errorf("%w: protocol %q has no asynchronous variant", errConfig, cfg.Protocol.Name())
	}
	v, err := cfg.Init.build(cfg.N)
	if err != nil {
		return AsyncResult{}, err
	}
	if maxTicks <= 0 {
		maxTicks = 10_000_000_000
	}
	r := rng.New(rng.DeriveSeed(cfg.Seed, 0))
	res := async.RunTraced(r, d, v, maxTicks, cfg.Trace)
	return AsyncResult{
		Ticks:     res.Ticks,
		Rounds:    res.Rounds,
		Consensus: res.Consensus,
		Winner:    res.Winner,
	}, nil
}
