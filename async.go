package plurality

// AsyncResult reports how an asynchronous run ended.
type AsyncResult struct {
	// Ticks is the number of single-vertex updates executed.
	Ticks int64
	// Rounds is Ticks/N, the synchronous-equivalent round count.
	Rounds float64
	// Consensus reports whether all vertices agreed within the budget.
	Consensus bool
	// Winner is the final plurality opinion.
	Winner int
}

// RunAsync executes the asynchronous variant of the configured
// dynamics (paper §1.1): one uniformly random vertex updates per tick.
// Supported protocols: ThreeMajority(), TwoChoices(), Voter().
// maxTicks bounds the run (<= 0 means DefaultMaxTicks). Config.Trace,
// if set, samples the configuration at full synchronous-equivalent
// round boundaries (every N ticks).
//
// Deprecated: use Experiment with Mode: ModeAsync — the positional
// tick budget is Experiment.MaxTicks there, validated with the same
// default. This wrapper keeps its signature and its exact streams:
// cfg.Seed is consumed as the engine seed directly, which is what an
// Experiment derives per trial (rng.DeriveSeed(Seed, i)).
func RunAsync(cfg Config, maxTicks int64) (AsyncResult, error) {
	e := cfg.experiment()
	e.Mode = ModeAsync
	// Legacy RunAsync silently ignored the sync-only knobs; keep that.
	e.MaxRounds = 0 // the tick budget is the async bound
	e.Adversary = Adversary{}
	if maxTicks > 0 {
		e.MaxTicks = maxTicks
	}
	c, err := e.compile()
	if err != nil {
		return AsyncResult{}, err
	}
	tr, err := c.runFacade(cfg.Seed, cfg.Trace, nil, 0)
	if err != nil {
		return AsyncResult{}, err
	}
	return AsyncResult{
		Ticks:     tr.Ticks,
		Rounds:    tr.Rounds,
		Consensus: tr.Consensus,
		Winner:    tr.Winner,
	}, nil
}
