// Scaling laws live: a miniature of the paper's Figure 1. Sweeping the
// number of opinions k at fixed n shows the headline separation —
// 3-Majority's consensus time saturates at Θ̃(√n) while 2-Choices keeps
// growing linearly in k. It also compares the asynchronous 3-Majority
// (ticks/n) against the synchronous round count (§1.1) — the unified
// Experiment API runs both through the same entry point, only the Mode
// differs.
package main

import (
	"fmt"
	"log"
	"math"

	"plurality"
)

func main() {
	const (
		n      = 40_000
		trials = 5
	)
	sqrtN := int(math.Sqrt(n))
	fmt.Printf("n = %d (√n = %d), balanced start, medians of %d trials\n\n", n, sqrtN, trials)
	fmt.Printf("%-8s %-8s %-14s %-14s %-10s\n", "k", "k/√n", "T 3-majority", "T 2-choices", "ratio")

	for _, k := range []int{8, 32, 128, 512, 2048} {
		t3 := medianRounds(plurality.ThreeMajority(), n, k, trials)
		t2 := medianRounds(plurality.TwoChoices(), n, k, trials)
		fmt.Printf("%-8d %-8.2f %-14.0f %-14.0f %-10.2f\n",
			k, float64(k)/float64(sqrtN), t3, t2, t2/t3)
	}

	fmt.Println("\nasync 3-Majority, k=32 (one random vertex updates per tick):")
	out, err := plurality.Experiment{
		Mode:     plurality.ModeAsync,
		N:        n,
		Protocol: plurality.ThreeMajority(),
		Init:     plurality.Balanced(32),
		Seed:     3,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	res := out.Trials[0]
	fmt.Printf("  %d ticks = %.1f synchronous-equivalent rounds (consensus: %v)\n",
		res.Ticks, res.Rounds, res.Consensus)
}

func medianRounds(p plurality.Protocol, n int64, k, trials int) float64 {
	out, err := plurality.Experiment{
		N:         n,
		Protocol:  p,
		Init:      plurality.Balanced(k),
		Seed:      9,
		NumTrials: trials,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	return out.MedianRounds()
}
