// Phase portrait: the max-initial-density scaling law, measured as a
// hitting time. D'Archivio, Becchetti, Clementi and Pasquale (arXiv
// 2606.11778) show 3-Majority's consensus time is governed by the
// maximum initial opinion density δ = max_i α_i(0): roughly Θ̃(1/δ)
// rounds whatever the opinion count. This example builds explicit
// initial histograms with a controlled δ (one leader at density δ, the
// rest spread thinly) and measures the Γ ≥ 1/2 phase boundary two
// ways through the shared service layer:
//
//   - directly, with a stopped request ({"stop":{"gamma_at_least":0.5}}
//     — the unified API's hitting-time primitive): each trial ends at
//     the crossing round, never simulating the endgame;
//   - post hoc, from a full traced run of the same seeds, via
//     internal/trace's phase analytics.
//
// Both measurements agree round-for-round (stop conditions observe the
// same between-rounds states the tracer samples and never touch the
// RNG streams), and the law shows up as:
//
//   - T·δ and T½·δ stay roughly flat while T itself varies by an
//     order of magnitude — the scaling law;
//   - the Γ ≥ 1/2 crossing tracks the Theorem 2.1 shape ln(n)/γ₀
//     (internal/theory.ConsensusTimeFromGamma) with an O(1) ratio.
package main

import (
	"fmt"
	"log"

	"plurality/internal/service"
	"plurality/internal/stop"
	"plurality/internal/trace"
)

const (
	n      = 20_000
	trials = 3
	// tailDensity is the per-opinion density of the non-leader
	// opinions: half the smallest leader density below, so the leader
	// is always the unique maximum.
	tailDensity = 1.0 / 128
)

func main() {
	fmt.Printf("3-Majority on n = %d, one leader at density δ, tail opinions at %.4g each\n", n, tailDensity)
	fmt.Printf("medians over %d trials; T = consensus rounds, T½ = Γ ≥ 1/2 hitting time (stopped runs)\n\n", trials)
	fmt.Printf("%-8s %-6s %-8s %-8s %-8s %-8s %-10s %-10s %-8s\n",
		"δ", "k", "T½", "T½·δ", "T", "T·δ", "ln(n)/γ₀", "T½/shape", "match")

	for _, invDelta := range []int64{2, 4, 8, 16, 32, 64} {
		delta := 1.0 / float64(invDelta)
		base := service.Request{
			Protocol: "3-majority",
			Counts:   countsWithLeader(delta),
			Seed:     7,
			Trials:   trials,
		}

		// Direct hitting times: every trial stops at the Γ ≥ 1/2
		// boundary — the request conserve would serve with a "stop"
		// field in the body.
		stopped := base
		stopped.Stop = &stop.Spec{GammaAtLeast: 0.5}
		stopResp, err := service.Execute(stopped)
		if err != nil {
			log.Fatal(err)
		}

		// Full runs of the same seeds, traced at every round, for the
		// consensus time and the post-hoc crossing.
		traced := base
		traced.Trace = &trace.Spec{Every: 1, MaxPoints: 16_384}
		traceResp, err := service.Execute(traced)
		if err != nil {
			log.Fatal(err)
		}

		// Cross-validate: the stopped rounds equal the trace crossings
		// trial for trial.
		match := true
		var check trace.TheoryCheck
		for i, pts := range trace.SplitTrials(traceResp.Trace) {
			ph, err := trace.AnalyzeTrial(pts)
			if err != nil {
				log.Fatal(err)
			}
			check = trace.Compare(ph, float64(n))
			match = match && stopResp.Trials[i].Rounds == float64(ph.GammaHalfRound)
		}

		tHalf := stopResp.Summary.MedianRounds
		tFull := traceResp.Summary.MedianRounds
		fmt.Printf("%-8.4g %-6d %-8.0f %-8.3g %-8.0f %-8.3g %-10.1f %-10.3f %-8v\n",
			delta, traceResp.Request.K, tHalf, tHalf*delta, tFull, tFull*delta,
			check.GammaHalfShape, tHalf/check.GammaHalfShape, match)
	}

	fmt.Println("\nT·δ flat ⇒ consensus time scales as 1/δ (the max-initial-density law);")
	fmt.Println("T½ == trace crossing ⇒ stopped runs are exact prefixes of full runs.")
}

// countsWithLeader builds an n-vertex histogram whose largest opinion
// has density delta and whose remaining mass is spread over opinions
// of density tailDensity (the last tail opinion takes the remainder).
func countsWithLeader(delta float64) []int64 {
	nf := float64(n)
	leader := int64(delta * nf)
	tail := int64(tailDensity * nf)
	counts := []int64{leader}
	for remaining := int64(n) - leader; remaining > 0; {
		c := tail
		if c > remaining {
			c = remaining
		}
		counts = append(counts, c)
		remaining -= c
	}
	return counts
}
