// Phase portrait: the max-initial-density scaling law, read off round
// traces. D'Archivio, Becchetti, Clementi and Pasquale (arXiv
// 2606.11778) show 3-Majority's consensus time is governed by the
// maximum initial opinion density δ = max_i α_i(0): roughly Θ̃(1/δ)
// rounds whatever the opinion count. This example builds explicit
// initial histograms with a controlled δ (one leader at density δ, the
// rest spread thinly), runs traced simulations through the shared
// service layer — the same traced requests conserve serves on
// POST /run?trace=1 — and extracts the phase boundaries from each
// trace with internal/trace's analytics:
//
//   - T·δ stays roughly flat while T itself varies by an order of
//     magnitude — the scaling law;
//   - the Γ ≥ 1/2 crossing tracks the Theorem 2.1 shape ln(n)/γ₀
//     (internal/theory.ConsensusTimeFromGamma) with an O(1) ratio;
//   - the surviving-opinion count at the end respects the Remark 2.5
//     bound n·ln(n)/T.
package main

import (
	"fmt"
	"log"

	"plurality/internal/service"
	"plurality/internal/trace"
)

const (
	n      = 20_000
	trials = 3
	// tailDensity is the per-opinion density of the non-leader
	// opinions: half the smallest leader density below, so the leader
	// is always the unique maximum.
	tailDensity = 1.0 / 128
)

func main() {
	fmt.Printf("3-Majority on n = %d, one leader at density δ, tail opinions at %.4g each\n", n, tailDensity)
	fmt.Printf("medians over %d trials; T = consensus rounds, TΓ½ = first recorded round with Γ ≥ 1/2\n\n", trials)
	fmt.Printf("%-8s %-6s %-8s %-8s %-8s %-10s %-10s %-8s\n",
		"δ", "k", "T", "T·δ", "TΓ½", "ln(n)/γ₀", "TΓ½/shape", "liveOK")

	for _, invDelta := range []int64{2, 4, 8, 16, 32, 64} {
		delta := 1.0 / float64(invDelta)
		resp, err := service.Execute(service.Request{
			Protocol: "3-majority",
			Counts:   countsWithLeader(delta),
			Seed:     7,
			Trials:   trials,
			Trace:    &trace.Spec{Policy: trace.PolicyAdaptive, MaxPoints: 4096},
		})
		if err != nil {
			log.Fatal(err)
		}
		k := resp.Request.K
		medianT := resp.Summary.MedianRounds

		// Phase boundaries of the median-ish trial: analyze every
		// trial's trace and take the middle Γ-crossing.
		var crossings []int64
		liveOK := true
		var check trace.TheoryCheck
		for _, pts := range trace.SplitTrials(resp.Trace) {
			ph, err := trace.AnalyzeTrial(pts)
			if err != nil {
				log.Fatal(err)
			}
			check = trace.Compare(ph, float64(n))
			crossings = append(crossings, ph.GammaHalfRound)
			liveOK = liveOK && check.LiveWithinBound
		}
		cross := medianInt(crossings)
		fmt.Printf("%-8.4g %-6d %-8.0f %-8.3g %-8d %-10.1f %-10.3f %-8v\n",
			delta, k, medianT, medianT*delta, cross,
			check.GammaHalfShape, float64(cross)/check.GammaHalfShape, liveOK)
	}

	fmt.Println("\nT·δ flat ⇒ consensus time scales as 1/δ (the max-initial-density law);")
	fmt.Println("TΓ½/shape O(1) ⇒ the Γ-crossing follows the Theorem 2.1 prediction.")
}

// countsWithLeader builds an n-vertex histogram whose largest opinion
// has density delta and whose remaining mass is spread over opinions
// of density tailDensity (the last tail opinion takes the remainder).
func countsWithLeader(delta float64) []int64 {
	nf := float64(n)
	leader := int64(delta * nf)
	tail := int64(tailDensity * nf)
	counts := []int64{leader}
	for remaining := int64(n) - leader; remaining > 0; {
		c := tail
		if c > remaining {
			c = remaining
		}
		counts = append(counts, c)
		remaining -= c
	}
	return counts
}

func medianInt(xs []int64) int64 {
	sorted := append([]int64(nil), xs...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	return sorted[len(sorted)/2]
}
