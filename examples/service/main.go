// Simulation as a service: spawn the conserve HTTP API in-process,
// issue a /run, then repeat the identical request and watch the LRU
// cache answer it without re-simulating — the contract is that both
// bodies are byte-identical, only the latency (and the
// X-Conserve-Cache header) differs. A final request adds a "stop"
// field, ending every trial at the Γ ≥ 1/2 phase boundary: a distinct
// cache entry that costs a fraction of the full-consensus run.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"plurality/internal/service"
)

func main() {
	// An in-process conserve: runner (worker pool + cache) + handler.
	runner := service.NewRunner(service.Options{})
	defer runner.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewServer(runner)}
	go srv.Serve(ln)
	defer srv.Close()
	base := fmt.Sprintf("http://%s", ln.Addr())
	fmt.Printf("conserve listening in-process on %s\n\n", base)

	const reqBody = `{"protocol":"3-majority","n":1000000,"k":100,"seed":42,"trials":8}`
	fmt.Printf("POST /run %s\n\n", reqBody)

	post := func(body string) (time.Duration, string, []byte) {
		start := time.Now()
		resp, err := http.Post(base+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			log.Fatalf("status %d: %s", resp.StatusCode, out)
		}
		return time.Since(start), resp.Header.Get(service.CacheHeader), out
	}

	coldLatency, coldCache, coldBody := post(reqBody)
	fmt.Printf("cold:   %8.2f ms  (%s: %s)\n", coldLatency.Seconds()*1e3, service.CacheHeader, coldCache)

	warmLatency, warmCache, warmBody := post(reqBody)
	fmt.Printf("cached: %8.2f ms  (%s: %s)\n", warmLatency.Seconds()*1e3, service.CacheHeader, warmCache)

	fmt.Printf("\nspeedup %.0f×, bodies byte-identical: %v\n",
		coldLatency.Seconds()/warmLatency.Seconds(), bytes.Equal(coldBody, warmBody))

	// The same shape stopped at the Γ ≥ 1/2 phase boundary: a new
	// cache key (the stop spec is part of the request identity) served
	// in a fraction of the full run's time.
	const stopBody = `{"protocol":"3-majority","n":1000000,"k":100,"seed":42,"trials":8,"stop":{"gamma_at_least":0.5}}`
	stopLatency, stopCache, _ := post(stopBody)
	fmt.Printf("\nPOST /run %s\nstopped: %7.2f ms  (%s: %s) — %.1f× cheaper than the cold full run\n",
		stopBody, stopLatency.Seconds()*1e3, service.CacheHeader, stopCache,
		coldLatency.Seconds()/stopLatency.Seconds())

	m := runner.Metrics()
	fmt.Printf("runner: %d requests, %d executions, %d cache hit(s)\n",
		m.Requests, m.Executions, m.CacheHits)
}
