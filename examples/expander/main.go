// Beyond the complete graph: the paper's §2.5 open problem asks how
// 3-Majority with many opinions behaves on other topologies. This demo
// runs the same balanced 4-opinion race on four graphs of 1024
// vertices: the complete graph, a random 8-regular graph (an expander
// w.h.p.), the 32×32 torus, and a ring. Expanders track the
// complete-graph behavior; low-conductance graphs are dramatically
// slower or fail to decide within the budget. Each race is one
// graph-mode Experiment — only the Topology field changes.
package main

import (
	"fmt"
	"log"

	"plurality"
)

func main() {
	const (
		n         = 1024
		k         = 4
		maxRounds = 20_000
	)

	topologies := []struct {
		name string
		top  plurality.Topology
	}{
		{"complete (paper setting)", plurality.CompleteTopology()},
		{"random 8-regular (expander)", plurality.RandomRegularTopology(8)},
		{"32x32 torus", plurality.TorusTopology(32)},
		{"ring, radius 2", plurality.RingTopology(2)},
	}

	fmt.Printf("3-Majority, n=%d, k=%d, balanced shuffled start, budget %d rounds\n\n", n, k, maxRounds)
	fmt.Printf("%-30s %-12s\n", "topology", "rounds")

	for _, tc := range topologies {
		out, err := plurality.Experiment{
			Mode:      plurality.ModeGraph,
			N:         n,
			Topology:  tc.top,
			Protocol:  plurality.ThreeMajority(),
			Init:      plurality.Balanced(k),
			Seed:      5,
			MaxRounds: maxRounds,
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		res := out.Trials[0]
		line := fmt.Sprintf("%.0f", res.Rounds)
		if !res.Consensus {
			line = "no consensus within budget"
		}
		fmt.Printf("%-30s %-12s\n", tc.name, line)
	}
	fmt.Println("\nconductance rules the race: expanders ≈ complete graph, grids/rings stall.")
}
