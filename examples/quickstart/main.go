// Quickstart: run 3-Majority with a million vertices and a hundred
// opinions to consensus through the unified Experiment API, watching
// the paper's potential function γ = Σ α(i)² grow from 1/k to 1.
package main

import (
	"fmt"
	"log"

	"plurality"
)

func main() {
	const (
		n = 1_000_000
		k = 100
	)

	fmt.Printf("3-Majority: n=%d vertices, k=%d opinions, balanced start\n\n", n, k)
	fmt.Printf("%-8s %-10s %-6s %-12s\n", "round", "gamma", "live", "leader frac")

	out, err := plurality.Experiment{
		N:        n,
		Protocol: plurality.ThreeMajority(),
		Init:     plurality.Balanced(k),
		Seed:     42,
		OnRound: func(_, round int, s plurality.Snapshot) bool {
			if round%25 == 0 || s.Live() == 1 {
				_, frac := s.Leader()
				fmt.Printf("%-8d %-10.5f %-6d %-12.5f\n", round, s.Gamma(), s.Live(), frac)
			}
			return false
		},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	res := out.Trials[0]
	fmt.Printf("\nconsensus on opinion %d after %.0f rounds (final γ = %.0f, %d live)\n",
		res.Winner, res.Rounds, res.Gamma, res.Live)
	fmt.Printf("paper Theorem 1.1: Θ̃(min{k, √n}) = Θ̃(min{%d, %d}) rounds\n", k, 1000)
}
