// Gossip network: the dynamics as a real concurrent system. Every node
// is a goroutine; pulls travel over channels; rounds are synchronized
// by a two-phase barrier. The demo runs 2-Choices on 400 nodes three
// ways — clean, with 5% of the nodes crashed, and with 40% pull loss —
// showing that the protocol's self-stabilizing drift survives both
// fault models (at the price of extra rounds).
package main

import (
	"fmt"
	"log"

	"plurality"
)

func main() {
	const (
		n = 400
		k = 4
	)
	base := plurality.GossipConfig{
		N:        n,
		Protocol: plurality.TwoChoices(),
		Init:     plurality.Balanced(k),
		Seed:     21,
	}

	fmt.Printf("gossip 2-Choices: %d node goroutines, %d opinions, balanced start\n\n", n, k)
	fmt.Printf("%-26s %-8s %-10s %-22s\n", "scenario", "rounds", "decided", "final counts")

	run := func(name string, mutate func(*plurality.GossipConfig)) {
		cfg := base
		mutate(&cfg)
		res, err := plurality.RunGossip(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %-8d %-10v %v\n", name, res.Rounds, res.Consensus, res.FinalCounts)
	}

	run("clean", func(*plurality.GossipConfig) {})
	run("5% nodes crashed", func(cfg *plurality.GossipConfig) {
		for id := 0; id < n/20; id++ {
			cfg.Crashed = append(cfg.Crashed, id*20)
		}
	})
	run("40% pull loss", func(cfg *plurality.GossipConfig) {
		cfg.LossProb = 0.4
	})

	fmt.Println("\ncrashed nodes stay frozen (their counts persist); loss only slows the race.")
}
