// Gossip network: the dynamics as a real concurrent system. Every node
// is a goroutine; pulls travel over channels; rounds are synchronized
// by a two-phase barrier. The demo runs 2-Choices on 400 nodes three
// ways — clean, with 5% of the nodes crashed, and with 40% pull loss —
// showing that the protocol's self-stabilizing drift survives both
// fault models (at the price of extra rounds). Each scenario is one
// gossip-mode Experiment; the TrialResult carries the final histogram
// with the crashed nodes' frozen opinions.
package main

import (
	"fmt"
	"log"

	"plurality"
)

func main() {
	const (
		n = 400
		k = 4
	)
	base := plurality.Experiment{
		Mode:     plurality.ModeGossip,
		N:        n,
		Protocol: plurality.TwoChoices(),
		Init:     plurality.Balanced(k),
		Seed:     21,
	}

	fmt.Printf("gossip 2-Choices: %d node goroutines, %d opinions, balanced start\n\n", n, k)
	fmt.Printf("%-26s %-8s %-10s %-22s\n", "scenario", "rounds", "decided", "final counts")

	run := func(name string, mutate func(*plurality.Experiment)) {
		exp := base
		mutate(&exp)
		out, err := exp.Run()
		if err != nil {
			log.Fatal(err)
		}
		res := out.Trials[0]
		fmt.Printf("%-26s %-8.0f %-10v %v\n", name, res.Rounds, res.Consensus, res.FinalCounts)
	}

	run("clean", func(*plurality.Experiment) {})
	run("5% nodes crashed", func(exp *plurality.Experiment) {
		for id := 0; id < n/20; id++ {
			exp.Crashed = append(exp.Crashed, id*20)
		}
	})
	run("40% pull loss", func(exp *plurality.Experiment) {
		exp.LossProb = 0.4
	})

	fmt.Println("\ncrashed nodes stay frozen (their counts persist); loss only slows the race.")
}
