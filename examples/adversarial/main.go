// Adversarial consensus: the paper's §2.5 extension (studied by
// Ghaffari & Lengler, PODC 2018). An adversary corrupts up to F
// vertices per round, always pushing the configuration back toward
// balance. 3-Majority absorbs small budgets with a modest delay but
// stalls once F is large — this demo sweeps F across that transition.
package main

import (
	"fmt"
	"log"
	"math"

	"plurality"
)

func main() {
	const (
		n         = 50_000
		k         = 8
		trials    = 7
		maxRounds = 30_000
	)
	glScale := math.Sqrt(float64(n)) / math.Pow(float64(k), 1.5)
	fmt.Printf("adversarial 3-Majority: n=%d, k=%d, hinder strategy\n", n, k)
	fmt.Printf("GL18 tolerance scale √n/k^1.5 ≈ %.1f\n\n", glScale)
	fmt.Printf("%-8s %-12s %-16s\n", "F", "converged", "median rounds")

	for _, f := range []int64{0, 2, 8, 32, 128, 512, 2048} {
		results, err := plurality.RunMany(plurality.Config{
			N:         n,
			Protocol:  plurality.ThreeMajority(),
			Init:      plurality.Balanced(k),
			Seed:      11,
			MaxRounds: maxRounds,
			Adversary: plurality.HinderAdversary(f),
		}, trials)
		if err != nil {
			log.Fatal(err)
		}
		converged := 0
		rounds := []int{}
		for _, res := range results {
			if res.Consensus {
				converged++
				rounds = append(rounds, res.Rounds)
			}
		}
		med := "stalled"
		if converged > 0 {
			med = fmt.Sprintf("%d", medianInt(rounds))
		}
		fmt.Printf("%-8d %d/%-10d %-16s\n", f, converged, trials, med)
	}
	fmt.Println("\nsmall budgets only delay consensus; overwhelming budgets freeze the race.")
}

func medianInt(xs []int) int {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs[len(xs)/2]
}
