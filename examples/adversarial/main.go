// Adversarial consensus: the paper's §2.5 extension (studied by
// Ghaffari & Lengler, PODC 2018). An adversary corrupts up to F
// vertices per round, always pushing the configuration back toward
// balance. 3-Majority absorbs small budgets with a modest delay but
// stalls once F is large — this demo sweeps F across that transition
// with one Experiment per budget.
package main

import (
	"fmt"
	"log"
	"math"

	"plurality"
)

func main() {
	const (
		n         = 50_000
		k         = 8
		trials    = 7
		maxRounds = 30_000
	)
	glScale := math.Sqrt(float64(n)) / math.Pow(float64(k), 1.5)
	fmt.Printf("adversarial 3-Majority: n=%d, k=%d, hinder strategy\n", n, k)
	fmt.Printf("GL18 tolerance scale √n/k^1.5 ≈ %.1f\n\n", glScale)
	fmt.Printf("%-8s %-12s %-16s\n", "F", "converged", "median rounds")

	for _, f := range []int64{0, 2, 8, 32, 128, 512, 2048} {
		out, err := plurality.Experiment{
			N:         n,
			Protocol:  plurality.ThreeMajority(),
			Init:      plurality.Balanced(k),
			Seed:      11,
			NumTrials: trials,
			MaxRounds: maxRounds,
			Adversary: plurality.HinderAdversary(f),
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		rounds := []float64{}
		for _, res := range out.Trials {
			if res.Consensus {
				rounds = append(rounds, res.Rounds)
			}
		}
		med := "stalled"
		if len(rounds) > 0 {
			med = fmt.Sprintf("%.0f", median(rounds))
		}
		fmt.Printf("%-8d %d/%-10d %-16s\n", f, out.Converged(), trials, med)
	}
	fmt.Println("\nsmall budgets only delay consensus; overwhelming budgets freeze the race.")
}

func median(xs []float64) float64 {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs[len(xs)/2]
}
