// Poll aggregation: the plurality-consensus use case that motivates
// the paper's Theorem 2.6. A fleet of 200k sensors each starts with a
// noisy local estimate (one of 12 candidate readings); the true
// reading has a small popularity edge. Gossiping with 2-Choices — two
// random peers per round, adopt only on agreement — the fleet
// collectively recovers the true reading with high probability, even
// though no sensor ever counts votes.
//
// The demo sweeps the initial margin around the paper's threshold
// √(α₁·log n/n) and reports how often the true reading wins, consuming
// each margin's trials through the Experiment.Trials streaming
// iterator as the parallel scheduler completes them.
package main

import (
	"fmt"
	"log"
	"math"

	"plurality"
)

func main() {
	const (
		n      = 200_000
		k      = 12
		trials = 30
	)
	logN := math.Log(float64(n))
	alpha1 := 1.0 / float64(k)
	threshold := math.Sqrt(alpha1 * logN / float64(n)) // Theorem 2.6 margin shape

	fmt.Printf("poll aggregation with 2-Choices: n=%d sensors, k=%d candidate readings\n", n, k)
	fmt.Printf("Theorem 2.6 margin threshold: %.5f (%.0f sensors)\n\n", threshold, threshold*n)
	fmt.Printf("%-12s %-14s %-14s\n", "margin/thr", "extra sensors", "P[true wins]")

	for _, mult := range []float64{0, 0.5, 1, 2, 4} {
		extraFrac := mult * threshold
		seq, err := plurality.Experiment{
			N:         n,
			Protocol:  plurality.TwoChoices(),
			Init:      plurality.PlantedBias(k, extraFrac),
			Seed:      7,
			NumTrials: trials,
		}.Trials()
		if err != nil {
			log.Fatal(err)
		}
		wins := 0
		for _, res := range seq {
			if res.Consensus && res.Winner == 0 {
				wins++
			}
		}
		fmt.Printf("%-12.1f %-14.0f %-14.3f\n", mult, extraFrac*n, float64(wins)/trials)
	}

	fmt.Println("\nbelow the threshold the winner is a coin flip among leaders;")
	fmt.Println("above it the true reading wins essentially always (Theorem 2.6).")
}
