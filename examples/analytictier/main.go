// Answer tiers in action: the same question — "how long until
// consensus?" — answered by simulation where n is simulable and by the
// calibrated analytic model everywhere, with the crossover made
// visible. At each n the simulated median should land inside the
// analytic prediction interval (that is the cross-validated contract,
// see internal/analytic); past the sync simulation cap the service
// promotes the request to the analytic tier automatically, turning a
// request that PR 8 would have rejected with 400 into a microsecond
// answer for n = 10^10 and beyond.
package main

import (
	"fmt"
	"log"
	"time"

	"plurality/internal/analytic"
	"plurality/internal/population"
	"plurality/internal/service"
)

func main() {
	const k = 64
	fmt.Printf("3-majority, balanced start, k = %d — simulation vs analytic tier\n\n", k)
	fmt.Printf("%-14s %-12s %-12s %-24s %-10s %-10s\n",
		"n", "simulated", "analytic", "95% interval", "t_sim", "t_analytic")

	for _, n := range []int64{1_000_000, 100_000_000, population.MaxN} {
		simRounds, simLatency := simulate(n, k)
		pred, anaLatency := predict(n, k)
		hit := " "
		if simRounds < pred.RoundsLo || simRounds > pred.RoundsHi {
			hit = "!" // outside the interval — allowed at the 5% rate
		}
		fmt.Printf("%-14d %-12.0f %-12.1f [%8.1f, %8.1f]%s    %-10s %-10s\n",
			n, simRounds, pred.Rounds, pred.RoundsLo, pred.RoundsHi, hit,
			simLatency.Round(time.Microsecond), anaLatency.Round(time.Microsecond))
	}

	// Beyond the sync cap there is nothing to simulate: Normalize
	// promotes the request to the analytic tier on its own, so the
	// planet-scale question costs the same microseconds.
	fmt.Printf("\npast the simulation cap (MaxN = %d):\n", population.MaxN)
	for _, n := range []int64{10_000_000_000, 1_000_000_000_000} {
		pred, lat := predict(n, k)
		fmt.Printf("  n = %-16d predicted %6.1f rounds [%.1f, %.1f] in %s (method: analytic)\n",
			n, pred.Rounds, pred.RoundsLo, pred.RoundsHi, lat.Round(time.Microsecond))
	}
}

// simulate runs the real engine through the same service layer the
// server uses and returns the median consensus time over 5 trials.
func simulate(n int64, k int) (float64, time.Duration) {
	start := time.Now()
	resp, err := service.Execute(service.Request{
		Protocol: "3-majority", N: n, K: k, Seed: 7, Trials: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	return resp.Summary.MedianRounds, time.Since(start)
}

// predict asks the calibrated model. For n past the sync cap the tier
// field could be omitted — Normalize promotes such requests itself —
// but being explicit keeps the two paths in this example symmetric.
func predict(n int64, k int) (*analytic.Prediction, time.Duration) {
	start := time.Now()
	resp, err := service.Execute(service.Request{
		Protocol: "3-majority", N: n, K: k, Tier: service.TierAnalytic,
	})
	if err != nil {
		log.Fatal(err)
	}
	if resp.Method != service.MethodAnalytic || resp.Analytic == nil {
		log.Fatalf("expected an analytic response, got method %q", resp.Method)
	}
	return resp.Analytic, time.Since(start)
}
