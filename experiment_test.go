package plurality

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"plurality/internal/rng"
	"plurality/internal/trace"
)

// equivTrial is the mode-independent projection of one trial used by
// the equivalence matrix: every field the legacy entry points report.
type equivTrial struct {
	rounds      float64
	ticks       int64
	consensus   bool
	winner      int
	finalCounts string
	trace       string
}

func pointsString(pts []trace.Point) string {
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, "%v;", p)
	}
	return b.String()
}

func countsString(counts []int64) string {
	return fmt.Sprint(counts)
}

// equivalenceCase drives one mode of the old-vs-new matrix: base holds
// the Experiment (mode, knobs), legacy runs trial i through the
// deprecated wrapper with the façade seed rng.DeriveSeed(Seed, i) and
// an optional caller-owned sampler — exactly how the wrappers document
// their streams.
type equivalenceCase struct {
	name   string
	base   Experiment
	legacy func(t *testing.T, facadeSeed uint64, sampler *trace.Sampler) equivTrial
}

func equivalenceCases() []equivalenceCase {
	syncCfg := Config{N: 3000, Protocol: ThreeMajority(), Init: Balanced(8)}
	asyncCfg := Config{N: 400, Protocol: TwoChoices(), Init: Balanced(4)}
	graphCfg := GraphConfig{N: 600, Topology: RandomRegularTopology(8), Protocol: ThreeMajority(), Init: Balanced(4)}
	gossipCfg := GossipConfig{N: 120, Protocol: Voter(), Init: Balanced(3), LossProb: 0.05, Crashed: []int{3, 7}}
	return []equivalenceCase{
		{
			name: "sync",
			base: Experiment{Mode: ModeSync, N: syncCfg.N, Protocol: syncCfg.Protocol, Init: syncCfg.Init, Seed: 11},
			legacy: func(t *testing.T, _ uint64, sampler *trace.Sampler) equivTrial {
				// Run(cfg) consumes DeriveSeed(cfg.Seed, 0) — the façade
				// seed of trial 0 — so it pins the sync mode's trial 0
				// here; trials beyond index 0 are pinned against
				// RunManyParallel in TestExperimentMatchesRunManyParallel.
				t.Helper()
				cfg := syncCfg
				cfg.Seed = 11
				cfg.Trace = sampler
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return equivTrial{rounds: float64(res.Rounds), consensus: res.Consensus, winner: res.Winner, trace: pointsString(sampler.Points())}
			},
		},
		{
			name: "async",
			base: Experiment{Mode: ModeAsync, N: asyncCfg.N, Protocol: asyncCfg.Protocol, Init: asyncCfg.Init, Seed: 12},
			legacy: func(t *testing.T, facadeSeed uint64, sampler *trace.Sampler) equivTrial {
				t.Helper()
				cfg := asyncCfg
				cfg.Seed = facadeSeed
				cfg.Trace = sampler
				res, err := RunAsync(cfg, 0)
				if err != nil {
					t.Fatal(err)
				}
				return equivTrial{rounds: res.Rounds, ticks: res.Ticks, consensus: res.Consensus, winner: res.Winner, trace: pointsString(sampler.Points())}
			},
		},
		{
			name: "graph",
			base: Experiment{Mode: ModeGraph, N: int64(graphCfg.N), Topology: graphCfg.Topology, Protocol: graphCfg.Protocol, Init: graphCfg.Init, Seed: 13},
			legacy: func(t *testing.T, facadeSeed uint64, sampler *trace.Sampler) equivTrial {
				t.Helper()
				cfg := graphCfg
				cfg.Seed = facadeSeed
				cfg.Trace = sampler
				res, err := RunOnGraph(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return equivTrial{rounds: float64(res.Rounds), consensus: res.Consensus, winner: res.Winner, trace: pointsString(sampler.Points())}
			},
		},
		{
			name: "gossip",
			base: Experiment{Mode: ModeGossip, N: int64(gossipCfg.N), Protocol: gossipCfg.Protocol, Init: gossipCfg.Init, LossProb: gossipCfg.LossProb, Crashed: gossipCfg.Crashed, Seed: 14},
			legacy: func(t *testing.T, facadeSeed uint64, sampler *trace.Sampler) equivTrial {
				t.Helper()
				cfg := gossipCfg
				cfg.Seed = facadeSeed
				cfg.Trace = sampler
				res, err := RunGossip(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return equivTrial{rounds: float64(res.Rounds), consensus: res.Consensus, winner: res.Winner, finalCounts: countsString(res.FinalCounts), trace: pointsString(sampler.Points())}
			},
		},
	}
}

func experimentTrial(tr TrialResult) equivTrial {
	out := equivTrial{rounds: tr.Rounds, ticks: tr.Ticks, consensus: tr.Consensus, winner: tr.Winner, trace: pointsString(tr.Trace)}
	if tr.FinalCounts != nil {
		out.finalCounts = countsString(tr.FinalCounts)
	}
	return out
}

// TestExperimentEquivalenceMatrix is the old-vs-new contract for all
// four modes × {serial, parallel} × {untraced, traced}: every trial of
// an Experiment equals the deprecated wrapper invoked with the façade
// seed rng.DeriveSeed(Seed, i) (for sync, trial 0 of RunMany-style
// batches equals Run — the documented identity), traces included, and
// the Experiment output is identical for every Parallelism value.
func TestExperimentEquivalenceMatrix(t *testing.T) {
	spec := trace.Spec{Policy: trace.PolicyLog2}
	const trials = 3
	for _, tc := range equivalenceCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			// Legacy reference, one wrapper call per trial (traced).
			want := make([]equivTrial, trials)
			for i := 0; i < trials; i++ {
				sampler := trace.NewSampler(spec, i)
				if tc.name == "sync" && i > 0 {
					// Run() only reproduces trial 0; trials 1.. of the
					// sync mode are covered by the RunManyParallel
					// comparison below.
					continue
				}
				want[i] = tc.legacy(t, rng.DeriveSeed(tc.base.Seed, uint64(i)), sampler)
			}

			for _, parallelism := range []int{1, 0} {
				for _, traced := range []bool{false, true} {
					e := tc.base
					e.NumTrials = trials
					e.Parallelism = parallelism
					if traced {
						e.Trace = &spec
					}
					out, err := e.Run()
					if err != nil {
						t.Fatalf("parallelism=%d traced=%v: %v", parallelism, traced, err)
					}
					if len(out.Trials) != trials {
						t.Fatalf("got %d trials", len(out.Trials))
					}
					for i, tr := range out.Trials {
						if tr.Trial != i || tr.Mode != tc.base.Mode {
							t.Fatalf("trial %d mislabeled: %+v", i, tr)
						}
						got := experimentTrial(tr)
						ref := want[i]
						if tc.name == "sync" && i > 0 {
							continue
						}
						if !traced {
							got.trace, ref.trace = "", ""
						}
						if got != ref {
							t.Fatalf("parallelism=%d traced=%v trial %d:\n got %+v\nwant %+v", parallelism, traced, i, got, ref)
						}
					}
				}
			}
		})
	}
}

// TestExperimentMatchesRunManyParallel pins the sync mode's multi-trial
// equivalence old-vs-new (trials beyond index 0, which the wrapper
// matrix above cannot reach through Run), serial and parallel, traced
// and untraced.
func TestExperimentMatchesRunManyParallel(t *testing.T) {
	cfg := Config{N: 2500, Protocol: TwoChoices(), Init: PlantedBias(8, 0.05), Seed: 21}
	const trials = 5
	spec := trace.Spec{Policy: trace.PolicyLog2}
	wantResults, wantTraces, err := RunManyTraced(cfg, trials, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{1, 0} {
		for _, traced := range []bool{false, true} {
			e := cfg.experiment()
			e.NumTrials = trials
			e.Parallelism = parallelism
			if traced {
				e.Trace = &spec
			}
			out, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			for i, tr := range out.Trials {
				want := wantResults[i]
				if int(tr.Rounds) != want.Rounds || tr.Consensus != want.Consensus || tr.Winner != want.Winner {
					t.Fatalf("parallelism=%d trial %d: %+v vs legacy %+v", parallelism, i, tr, want)
				}
				if traced && pointsString(tr.Trace) != pointsString(wantTraces[i]) {
					t.Fatalf("parallelism=%d trial %d trace differs", parallelism, i)
				}
			}
		}
	}
}

// TestExperimentTrialsStreaming: the Trials iterator yields exactly
// Run's results, in index order, and an early break is clean.
func TestExperimentTrialsStreaming(t *testing.T) {
	e := Experiment{N: 2000, Protocol: ThreeMajority(), Init: Balanced(8), Seed: 5, NumTrials: 6}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := e.Trials()
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for i, tr := range seq {
		if i != next {
			t.Fatalf("yielded index %d, want %d", i, next)
		}
		if experimentTrial(tr) != experimentTrial(out.Trials[i]) {
			t.Fatalf("trial %d: stream %+v vs run %+v", i, tr, out.Trials[i])
		}
		next++
	}
	if next != 6 {
		t.Fatalf("stream yielded %d trials", next)
	}
	// Early break: consume two trials and leave.
	seq, err = e.Trials()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range seq {
		if n++; n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("break consumed %d trials", n)
	}
}

// TestExperimentValidation: per-mode knobs are rejected outside their
// mode, and the legacy error classes survive.
func TestExperimentValidation(t *testing.T) {
	valid := Experiment{N: 1000, Protocol: ThreeMajority(), Init: Balanced(4)}
	cases := []struct {
		name   string
		mutate func(*Experiment)
		want   string
	}{
		{"no protocol", func(e *Experiment) { e.Protocol = Protocol{} }, "Protocol"},
		{"no init", func(e *Experiment) { e.Init = Init{} }, "Init"},
		{"negative N", func(e *Experiment) { e.N = -1 }, "N"},
		{"negative trials", func(e *Experiment) { e.NumTrials = -2 }, "NumTrials"},
		{"ticks outside async", func(e *Experiment) { e.MaxTicks = 100 }, "MaxTicks"},
		{"gossip loss prob", func(e *Experiment) { e.Mode = ModeGossip; e.LossProb = 1.5 }, "LossProb"},
		{"gossip crashed id", func(e *Experiment) { e.Mode = ModeGossip; e.Crashed = []int{5000} }, "crashed id"},
		{"misshapen torus", func(e *Experiment) { e.Mode = ModeGraph; e.Topology = TorusTopology(7) }, "torus"},
		{"misshapen hypercube", func(e *Experiment) { e.Mode = ModeGraph; e.Topology = HypercubeTopology(5) }, "hypercube"},
		{"random-regular shape", func(e *Experiment) { e.Mode = ModeGraph; e.N = 999; e.Topology = RandomRegularTopology(3) }, "RandomRegular"},
		{"NaN stop gamma", func(e *Experiment) { e.Stop = StopWhenGammaAtLeast(math.NaN()) }, "gamma"},
		{"adversary outside sync", func(e *Experiment) { e.Mode = ModeAsync; e.Adversary = HinderAdversary(5) }, "Adversary"},
		{"onround outside sync", func(e *Experiment) {
			e.Mode = ModeGossip
			e.OnRound = func(int, int, Snapshot) bool { return false }
		}, "OnRound"},
		{"topology outside graph", func(e *Experiment) { e.Topology = RingTopology(1) }, "Topology"},
		{"faults outside gossip", func(e *Experiment) { e.LossProb = 0.1 }, "LossProb"},
		{"missing topology", func(e *Experiment) { e.Mode = ModeGraph }, "Topology"},
		{"unknown mode", func(e *Experiment) { e.Mode = "quantum" }, "Mode"},
		{"bad stop spec", func(e *Experiment) { e.Stop = StopWhenGammaAtLeast(1.5) }, "gamma"},
		{"negative ticks", func(e *Experiment) { e.Mode = ModeAsync; e.MaxTicks = -1 }, "MaxTicks"},
		{"async protocol", func(e *Experiment) { e.Mode = ModeAsync; e.Protocol = Median() }, "asynchronous"},
		{"gossip protocol", func(e *Experiment) { e.Mode = ModeGossip; e.Protocol = HMajority(5) }, "gossip"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := valid
			tc.mutate(&e)
			_, err := e.Run()
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The valid base still runs, and a misshapen experiment fails
	// loudly from Trials too — before any trial is scheduled.
	if _, err := valid.Run(); err != nil {
		t.Fatal(err)
	}
	bad := valid
	bad.Mode = ModeGossip
	bad.LossProb = 1.5
	if _, err := bad.Trials(); err == nil {
		t.Fatal("Trials accepted an invalid experiment")
	}
}

// TestExperimentNegativeMaxRoundsIsDefault: the legacy entry points
// treated any non-positive round budget as the engine default; the
// unified path keeps that rather than erroring.
func TestExperimentNegativeMaxRoundsIsDefault(t *testing.T) {
	e := Experiment{N: 1000, Protocol: ThreeMajority(), Init: Balanced(4), Seed: 2, MaxRounds: -1}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Trials[0].Consensus {
		t.Fatalf("negative MaxRounds did not fall back to the default budget: %+v", out.Trials[0])
	}
	legacy, err := Run(Config{N: 1000, Protocol: ThreeMajority(), Init: Balanced(4), Seed: 2, MaxRounds: -1})
	if err != nil {
		t.Fatal(err)
	}
	if float64(legacy.Rounds) != out.Trials[0].Rounds {
		t.Fatalf("legacy wrapper diverged on negative MaxRounds: %d vs %v", legacy.Rounds, out.Trials[0].Rounds)
	}
}

// TestStopAtConsensusRoundIsUniform: a condition that first holds at
// the consensus round itself (live <= 1 ⟺ consensus on the
// between-rounds states) reports Stopped AND Consensus in every mode
// that evaluates stops on the consensus round's boundary. (Async ends
// mid-round at the consensus tick, before the next boundary, so its
// Stopped flag legitimately stays false there.)
func TestStopAtConsensusRoundIsUniform(t *testing.T) {
	for _, base := range stopPropertyCases() {
		base := base
		if base.Mode == ModeAsync {
			continue
		}
		t.Run(string(base.Mode), func(t *testing.T) {
			t.Parallel()
			full := base
			full.Seed = 6
			fullOut, err := full.Run()
			if err != nil {
				t.Fatal(err)
			}
			e := base
			e.Seed = 6
			e.Stop = StopWhenLiveAtMost(1)
			out, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			tr := out.Trials[0]
			if !tr.Consensus || !tr.Stopped {
				t.Fatalf("consensus-round stop: %+v (want Consensus && Stopped)", tr)
			}
			if tr.Rounds != fullOut.Trials[0].Rounds || tr.Winner != fullOut.Trials[0].Winner {
				t.Fatalf("consensus-round stop changed the result: %+v vs %+v", tr, fullOut.Trials[0])
			}
		})
	}
}

// TestExperimentDefaults: zero-value knobs normalize to sync mode, one
// trial, and (async) the documented tick budget.
func TestExperimentDefaults(t *testing.T) {
	e := Experiment{N: 500, Protocol: Voter(), Init: Balanced(2), Seed: 3}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Mode != ModeSync || len(out.Trials) != 1 {
		t.Fatalf("defaults: %+v", out)
	}
	c, err := Experiment{Mode: ModeAsync, N: 10, Protocol: Voter(), Init: Balanced(2)}.compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.e.MaxTicks != DefaultMaxTicks {
		t.Fatalf("async MaxTicks default = %d", c.e.MaxTicks)
	}
}

// TestStopConditionCombinators: And keeps the stricter clauses and the
// zero value is consensus-only.
func TestStopConditionCombinators(t *testing.T) {
	c := StopWhenGammaAtLeast(0.3).And(StopWhenGammaAtLeast(0.5)).And(StopWhenLiveAtMost(4)).And(StopAfterRounds(10))
	s := c.Spec()
	if s.GammaAtLeast != 0.5 || s.LiveAtMost != 4 || s.AfterRounds != 10 {
		t.Fatalf("combined spec %+v", s)
	}
	if StopAtConsensus() != (StopCondition{}) {
		t.Fatal("StopAtConsensus is not the zero value")
	}
	if got := c.String(); got != "gamma>=0.5,live<=4,round>=10" {
		t.Fatalf("String = %q", got)
	}
}

// TestWorkerSplitClamps moves the memory-clamp contract to the
// Experiment scheduler: graph trial fan-out stays within the vertex
// and edge budgets, gossip fan-out within the node budget, and the
// leftover graph budget shards each run.
func TestWorkerSplitClamps(t *testing.T) {
	graphSplit := func(par, trials int, n int64, topo Topology) (int, int) {
		c := &compiled{e: Experiment{Mode: ModeGraph, N: n, NumTrials: trials, Topology: topo}}
		return c.workerSplit(par)
	}
	if tw, _ := graphSplit(32, 32, 16_000_000, CompleteTopology()); int64(tw)*16_000_000 > graphVertexBudget || tw < 1 {
		t.Fatalf("vertex budget violated: trial workers %d", tw)
	}
	// A dense mid-size topology (n·degree = 2^29 slots, ~2 GiB per
	// adjacency) is edge-bound: at most two concurrent builds.
	if tw, _ := graphSplit(64, 64, 1<<18, RandomRegularTopology(1<<11)); tw != 2 {
		t.Fatalf("dense adjacency fan-out = %d, want 2", tw)
	}
	if tw, gw := graphSplit(8, 4, 1000, RandomRegularTopology(8)); tw != 4 || gw != 2 {
		t.Fatalf("small graphs: trial workers %d (want 4), shard workers %d (want 2)", tw, gw)
	}
	if tw, _ := graphSplit(3, 100, 1000, RandomRegularTopology(8)); tw != 3 {
		t.Fatalf("parallelism still bounds fan-out: got %d, want 3", tw)
	}

	gossipSplit := func(par int, n int64) int {
		c := &compiled{e: Experiment{Mode: ModeGossip, N: n, NumTrials: 1 << 20}}
		tw, _ := c.workerSplit(par)
		return tw
	}
	if got := gossipSplit(32, 100_000); int64(got)*100_000 > gossipNodeBudget || got < 1 {
		t.Fatalf("gossip node budget violated: %d", got)
	}
	if got := gossipSplit(8, 100); got != 8 {
		t.Fatalf("small networks use the full budget: got %d", got)
	}
	if got := gossipSplit(1, 50); got != 1 {
		t.Fatalf("serial stays serial: got %d", got)
	}
}
