package plurality

import (
	"testing"

	"plurality/internal/trace"
)

// stopPropertyCases are one Experiment per mode, sized so the Γ ≥ 1/2
// crossing happens well before consensus (balanced k=16 starts at
// γ₀ = 1/16).
func stopPropertyCases() []Experiment {
	return []Experiment{
		{Mode: ModeSync, N: 20_000, Protocol: ThreeMajority(), Init: Balanced(16)},
		{Mode: ModeAsync, N: 1_500, Protocol: ThreeMajority(), Init: Balanced(16)},
		{Mode: ModeGraph, N: 1_500, Topology: CompleteTopology(), Protocol: ThreeMajority(), Init: Balanced(16)},
		{Mode: ModeGossip, N: 256, Protocol: ThreeMajority(), Init: Balanced(8)},
	}
}

// TestStopGammaMatchesTraceCrossing is the stop-condition property
// test: in every mode, a StopWhenGammaAtLeast(0.5) trial's recorded
// round equals the Γ ≥ 1/2 crossing round trace.AnalyzeTrial reports
// on the same seed's full every=1 trace — the hitting time measured
// directly equals the hitting time read off the trajectory, because
// stop conditions observe the same between-rounds states the tracer
// samples and never perturb the streams.
func TestStopGammaMatchesTraceCrossing(t *testing.T) {
	full := trace.Spec{Every: 1, MaxPoints: trace.CapMaxPoints}
	for _, base := range stopPropertyCases() {
		base := base
		t.Run(string(base.Mode), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 3; seed++ {
				// Full run, traced at every round boundary.
				ref := base
				ref.Seed = seed
				ref.Trace = &full
				refOut, err := ref.Run()
				if err != nil {
					t.Fatal(err)
				}
				refTrial := refOut.Trials[0]
				phases, err := trace.AnalyzeTrial(refTrial.Trace)
				if err != nil {
					t.Fatal(err)
				}
				if phases.Gamma0 >= 0.5 {
					t.Fatalf("seed %d: initial γ %v already past the threshold", seed, phases.Gamma0)
				}
				if phases.GammaHalfRound < 0 {
					t.Fatalf("seed %d: full trace never crossed Γ >= 1/2 (consensus %v)", seed, refTrial.Consensus)
				}

				// Stopped run on the same seed.
				stopExp := base
				stopExp.Seed = seed
				stopExp.Stop = StopWhenGammaAtLeast(0.5)
				stopOut, err := stopExp.Run()
				if err != nil {
					t.Fatal(err)
				}
				st := stopOut.Trials[0]
				if !st.Stopped && !st.Consensus {
					t.Fatalf("seed %d: stopped trial ended on neither stop nor consensus: %+v", seed, st)
				}
				if st.Rounds != float64(phases.GammaHalfRound) {
					t.Fatalf("seed %d: stop recorded round %v, trace crossing at %d", seed, st.Rounds, phases.GammaHalfRound)
				}
				if st.Gamma < 0.5 {
					t.Fatalf("seed %d: final γ %v below the threshold", seed, st.Gamma)
				}
				if st.Rounds > refTrial.Rounds {
					t.Fatalf("seed %d: stopped run (%v rounds) longer than full run (%v)", seed, st.Rounds, refTrial.Rounds)
				}
			}
		})
	}
}

// TestStopLiveAndRoundClauses exercises the other clause types on the
// sync engine: live<=m stops at the first round with at most m
// survivors, round>=r behaves like a composable MaxRounds, and a
// conjunction stops at the first round satisfying all clauses.
func TestStopLiveAndRoundClauses(t *testing.T) {
	base := Experiment{N: 20_000, Protocol: ThreeMajority(), Init: Balanced(32), Seed: 9}

	full := base
	full.Trace = &trace.Spec{Every: 1, MaxPoints: trace.CapMaxPoints}
	refOut, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	pts := refOut.Trials[0].Trace

	liveStop := base
	liveStop.Stop = StopWhenLiveAtMost(8)
	liveOut, err := liveStop.Run()
	if err != nil {
		t.Fatal(err)
	}
	lt := liveOut.Trials[0]
	wantRound := int64(-1)
	for _, p := range pts {
		if p.Live <= 8 {
			wantRound = p.Round
			break
		}
	}
	if wantRound < 0 {
		t.Fatal("full trace never reached live <= 8")
	}
	if lt.Rounds != float64(wantRound) || lt.Live > 8 {
		t.Fatalf("live<=8 stopped at %+v, trace says round %d", lt, wantRound)
	}

	roundStop := base
	roundStop.Stop = StopAfterRounds(3)
	ro, err := roundStop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ro.Trials[0].Rounds != 3 || !ro.Trials[0].Stopped {
		t.Fatalf("round>=3 stop: %+v", ro.Trials[0])
	}

	// Conjunction: gamma>=0.5 AND round>=N for N past the crossing —
	// the later clause dominates.
	crossing := int64(-1)
	for _, p := range pts {
		if p.Gamma >= 0.5 {
			crossing = p.Round
			break
		}
	}
	if crossing < 0 {
		t.Fatal("no Γ crossing in reference trace")
	}
	conj := base
	conj.Stop = StopWhenGammaAtLeast(0.5).And(StopAfterRounds(crossing + 2))
	co, err := conj.Run()
	if err != nil {
		t.Fatal(err)
	}
	ct := co.Trials[0]
	if ct.Rounds < float64(crossing+2) {
		t.Fatalf("conjunction fired at %v, before round clause %d", ct.Rounds, crossing+2)
	}
	if ct.Consensus && ct.Rounds != float64(crossing+2) {
		// Consensus may legitimately land first only if it happens
		// before the conjunction round; then Stopped is false.
		t.Fatalf("unexpected consensus shape: %+v", ct)
	}
}

// TestStopZeroRound: a condition already true at round 0 stops before
// any protocol step in every mode.
func TestStopZeroRound(t *testing.T) {
	for _, base := range stopPropertyCases() {
		base := base
		t.Run(string(base.Mode), func(t *testing.T) {
			e := base
			e.Seed = 4
			e.Stop = StopWhenLiveAtMost(1 << 20) // true immediately
			out, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			tr := out.Trials[0]
			if tr.Rounds != 0 || tr.Ticks != 0 || !tr.Stopped {
				t.Fatalf("round-0 stop: %+v", tr)
			}
		})
	}
}
