package plurality

import (
	"strings"
	"testing"

	"plurality/internal/trace"
)

func TestRunBasics(t *testing.T) {
	for _, p := range []Protocol{ThreeMajority(), TwoChoices(), Median(), HMajority(5)} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			res, err := Run(Config{
				N:        2000,
				Protocol: p,
				Init:     Balanced(8),
				Seed:     1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Consensus {
				t.Fatalf("no consensus: %+v", res)
			}
			if res.Winner < 0 || res.Winner >= 8 {
				t.Fatalf("winner %d out of range", res.Winner)
			}
			if res.Rounds <= 0 {
				t.Fatalf("rounds = %d", res.Rounds)
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{N: 5000, Protocol: ThreeMajority(), Init: Balanced(16), Seed: 7}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same config, different results: %+v vs %+v", a, b)
	}
}

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no protocol", Config{N: 10, Init: Balanced(2)}, "Protocol"},
		{"no init", Config{N: 10, Protocol: Voter()}, "Init"},
		{"negative N", Config{N: -1, Protocol: Voter(), Init: Balanced(2)}, "N"},
		{"k > n", Config{N: 5, Protocol: Voter(), Init: Balanced(10)}, "Balanced"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Run(c.cfg)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestProtocolNames(t *testing.T) {
	if (Protocol{}).Name() != "unset" {
		t.Error("zero Protocol should be unset")
	}
	if ThreeMajority().Name() != "3-majority" || TwoChoices().Name() != "2-choices" {
		t.Error("protocol names wrong")
	}
}

func TestInitGenerators(t *testing.T) {
	for _, tc := range []struct {
		name string
		init Init
	}{
		{"balanced", Balanced(4)},
		{"planted", PlantedBias(4, 0.1)},
		{"zipf", Zipf(4, 1)},
		{"geometric", Geometric(4, 0.5)},
		{"two leaders", TwoLeaders(4, 0.5, 0.1)},
		{"fractions", Fractions([]float64{0.5, 0.3, 0.2})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(Config{N: 1000, Protocol: ThreeMajority(), Init: tc.init, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Consensus {
				t.Fatal("no consensus")
			}
		})
	}
}

func TestCountsInit(t *testing.T) {
	res, err := Run(Config{Protocol: TwoChoices(), Init: Counts([]int64{600, 300, 100}), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatal("no consensus")
	}
	if _, err := Run(Config{N: 99, Protocol: TwoChoices(), Init: Counts([]int64{50, 50})}); err == nil {
		t.Fatal("mismatched N accepted")
	}
}

func TestPlantedBiasValidation(t *testing.T) {
	if _, err := Run(Config{N: 100, Protocol: Voter(), Init: PlantedBias(2, 0.9)}); err == nil {
		t.Fatal("oversized extraFraction accepted")
	}
	if _, err := Run(Config{N: 100, Protocol: Voter(), Init: PlantedBias(2, -0.1)}); err == nil {
		t.Fatal("negative extraFraction accepted")
	}
}

func TestOnRoundObserverAndSnapshot(t *testing.T) {
	var gammas []float64
	var rounds int
	res, err := Run(Config{
		N:        3000,
		Protocol: ThreeMajority(),
		Init:     Balanced(4),
		Seed:     4,
		OnRound: func(round int, s Snapshot) bool {
			rounds++
			gammas = append(gammas, s.Gamma())
			if s.N() != 3000 || s.K() != 4 {
				t.Errorf("snapshot metadata wrong: n=%d k=%d", s.N(), s.K())
			}
			if s.Live() < 1 || s.Count(0) < 0 {
				t.Error("snapshot counts wrong")
			}
			op, frac := s.Leader()
			if op < 0 || op >= 4 || frac <= 0 || frac > 1 {
				t.Errorf("leader (%d, %v) out of range", op, frac)
			}
			if a := s.Alpha(op); a != frac {
				t.Errorf("Alpha(leader) %v != leader fraction %v", a, frac)
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != res.Rounds+1 {
		t.Fatalf("observer called %d times for %d rounds", rounds, res.Rounds)
	}
	if gammas[0] != 0.25 || gammas[len(gammas)-1] != 1 {
		t.Fatalf("gamma trajectory endpoints %v, %v", gammas[0], gammas[len(gammas)-1])
	}
}

func TestOnRoundEarlyStop(t *testing.T) {
	res, err := Run(Config{
		N:        10000,
		Protocol: TwoChoices(),
		Init:     Balanced(64),
		Seed:     5,
		OnRound:  func(round int, s Snapshot) bool { return round >= 3 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 || res.Consensus {
		t.Fatalf("early stop result %+v", res)
	}
}

func TestMaxRoundsCutoff(t *testing.T) {
	res, err := Run(Config{
		N:         100000,
		Protocol:  TwoChoices(),
		Init:      Balanced(128),
		Seed:      6,
		MaxRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Consensus || res.Rounds != 2 {
		t.Fatalf("cutoff result %+v", res)
	}
}

func TestUndecidedRun(t *testing.T) {
	// 3 real opinions + undecided slot, biased toward opinion 0.
	res, err := Run(Config{
		Protocol: Undecided(),
		Init:     Counts([]int64{500, 300, 200, 0}),
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatal("USD did not reach decided consensus")
	}
	if res.Winner == 3 {
		t.Fatal("undecided state won")
	}
}

func TestAdversaryConfig(t *testing.T) {
	slow, err := Run(Config{
		N:         2000,
		Protocol:  ThreeMajority(),
		Init:      Balanced(2),
		Seed:      8,
		MaxRounds: 500,
		Adversary: HinderAdversary(400),
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Consensus {
		t.Fatal("consensus despite overwhelming adversary")
	}
	fast, err := Run(Config{
		N:         2000,
		Protocol:  ThreeMajority(),
		Init:      Balanced(2),
		Seed:      8,
		MaxRounds: 500,
		Adversary: HelpAdversary(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Consensus {
		t.Fatal("helped run did not converge")
	}
	// Scatter is weak noise; consensus should still happen.
	noisy, err := Run(Config{
		N:         2000,
		Protocol:  ThreeMajority(),
		Init:      Balanced(2),
		Seed:      8,
		MaxRounds: 5000,
		Adversary: ScatterAdversary(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !noisy.Consensus {
		t.Fatal("scatter-noised run did not converge")
	}
}

func TestRunMany(t *testing.T) {
	results, err := RunMany(Config{
		N:        3000,
		Protocol: ThreeMajority(),
		Init:     PlantedBias(8, 0.1),
		Seed:     9,
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("%d results", len(results))
	}
	wins := 0
	for _, res := range results {
		if !res.Consensus {
			t.Fatal("trial did not converge")
		}
		if res.Winner == 0 {
			wins++
		}
	}
	// With a 10% planted bias at n=3000, opinion 0 should win nearly
	// always.
	if wins < 8 {
		t.Fatalf("planted opinion won only %d/10", wins)
	}
}

func TestRunManyValidation(t *testing.T) {
	cfg := Config{N: 100, Protocol: Voter(), Init: Balanced(2)}
	if _, err := RunMany(cfg, 0); err == nil {
		t.Fatal("trials=0 accepted")
	}
	cfg.OnRound = func(int, Snapshot) bool { return false }
	if _, err := RunMany(cfg, 2); err == nil {
		t.Fatal("OnRound accepted by RunMany")
	}
	bad := Config{N: 10, Protocol: Voter(), Init: Balanced(50)}
	if _, err := RunMany(bad, 2); err == nil {
		t.Fatal("invalid init accepted")
	}
}

func TestLazyVariantFacade(t *testing.T) {
	p := LazyVariant(ThreeMajority(), 0.5)
	if p.Name() != "lazy0.50-3-majority" {
		t.Fatalf("name = %q", p.Name())
	}
	res, err := Run(Config{N: 2000, Protocol: p, Init: Balanced(4), Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatal("lazy run did not converge")
	}
	plain, err := Run(Config{N: 2000, Protocol: ThreeMajority(), Init: Balanced(4), Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= plain.Rounds {
		t.Errorf("lazy rounds %d not above plain %d", res.Rounds, plain.Rounds)
	}
}

func TestDirichletInit(t *testing.T) {
	results, err := RunMany(Config{
		N:        3000,
		Protocol: TwoChoices(),
		Init:     Dirichlet(6, 1, 99),
		Seed:     14,
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Random starts give different trajectories across trials.
	distinct := map[int]bool{}
	for _, res := range results {
		if !res.Consensus {
			t.Fatal("trial did not converge")
		}
		distinct[res.Rounds] = true
	}
	if len(distinct) < 2 {
		t.Error("all Dirichlet trials identical; random init not random")
	}
	if _, err := Run(Config{N: 100, Protocol: Voter(), Init: Dirichlet(0, 1, 1)}); err == nil {
		t.Error("k=0 Dirichlet accepted")
	}
	if _, err := Run(Config{N: 100, Protocol: Voter(), Init: Dirichlet(4, 0, 1)}); err == nil {
		t.Error("zero concentration accepted")
	}
}

func TestRunAsync(t *testing.T) {
	res, err := RunAsync(Config{
		N:        500,
		Protocol: ThreeMajority(),
		Init:     Balanced(4),
		Seed:     10,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatal("async run did not converge")
	}
	if res.Rounds != float64(res.Ticks)/500 {
		t.Fatalf("rounds %v vs ticks %d inconsistent", res.Rounds, res.Ticks)
	}
	if _, err := RunAsync(Config{N: 100, Protocol: Median(), Init: Balanced(2)}, 0); err == nil {
		t.Fatal("median async accepted")
	}
}

func TestRunOnGraphTopologies(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		top  Topology
		seed uint64
	}{
		{"complete", 400, CompleteTopology(), 11},
		{"random regular", 400, RandomRegularTopology(8), 11},
		// The hypercube is bipartite, and synchronous 3-Majority
		// without self-sampling can absorb into a deterministic
		// period-2 oscillation (each side uniform on a different
		// opinion) instead of consensus — a sizeable fraction of seeds
		// do. The pinned seed is one whose trajectory converges.
		{"hypercube", 256, HypercubeTopology(8), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunOnGraph(GraphConfig{
				N:        tc.n,
				Topology: tc.top,
				Protocol: ThreeMajority(),
				Init:     Balanced(4),
				Seed:     tc.seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Consensus {
				t.Fatalf("no consensus on %s", tc.name)
			}
		})
	}
}

func TestRunOnGraphValidation(t *testing.T) {
	base := GraphConfig{
		N:        100,
		Topology: CompleteTopology(),
		Protocol: ThreeMajority(),
		Init:     Balanced(4),
	}
	bad := base
	bad.N = 0
	if _, err := RunOnGraph(bad); err == nil {
		t.Error("N=0 accepted")
	}
	bad = base
	bad.Topology = Topology{}
	if _, err := RunOnGraph(bad); err == nil {
		t.Error("missing topology accepted")
	}
	bad = base
	bad.Protocol = Median()
	if _, err := RunOnGraph(bad); err == nil {
		t.Error("median on graphs accepted")
	}
	bad = base
	bad.Topology = TorusTopology(7) // 49 != 100
	if _, err := RunOnGraph(bad); err == nil {
		t.Error("mismatched torus accepted")
	}
	bad = base
	bad.Topology = HypercubeTopology(5) // 32 != 100
	if _, err := RunOnGraph(bad); err == nil {
		t.Error("mismatched hypercube accepted")
	}
	bad = base
	bad.Init = Init{}
	if _, err := RunOnGraph(bad); err == nil {
		t.Error("missing init accepted")
	}
}

func TestRingSlowerThanComplete(t *testing.T) {
	complete, err := RunOnGraph(GraphConfig{
		N: 256, Topology: CompleteTopology(), Protocol: TwoChoices(),
		Init: Balanced(2), Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	ring, err := RunOnGraph(GraphConfig{
		N: 256, Topology: RingTopology(2), Protocol: TwoChoices(),
		Init: Balanced(2), Seed: 12, MaxRounds: complete.Rounds * 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Consensus && ring.Rounds <= complete.Rounds {
		t.Fatalf("ring (%d rounds) not slower than complete (%d rounds)", ring.Rounds, complete.Rounds)
	}
}

func TestRunWithTraceSampler(t *testing.T) {
	cfg := Config{N: 2000, Protocol: ThreeMajority(), Init: Balanced(8), Seed: 3}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traced := cfg
	traced.Trace = trace.NewSampler(trace.Spec{Every: 1, MaxPoints: trace.CapMaxPoints}, 0)
	res, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	if res != plain {
		t.Fatalf("tracing changed the result: %+v vs %+v", res, plain)
	}
	pts := traced.Trace.Points()
	// Round 0 through the consensus round inclusive: the observer fires
	// once per round including the final state.
	if len(pts) != res.Rounds+1 {
		t.Fatalf("every=1 trace has %d points for a %d-round run", len(pts), res.Rounds)
	}
	if pts[0].Round != 0 || pts[0].Live != 8 || pts[0].Gamma != 0.125 {
		t.Fatalf("initial point %+v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.Gamma != 1 || last.Live != 1 || last.MaxAlpha != 1 {
		t.Fatalf("final point not consensus: %+v", last)
	}

	// The trace of trial 0 via RunManyTraced is the same stream.
	_, traces, err := RunManyTraced(cfg, 1, 1, trace.Spec{Every: 1, MaxPoints: trace.CapMaxPoints})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || len(traces[0]) != len(pts) {
		t.Fatalf("RunManyTraced trial 0 trace differs: %d vs %d points", len(traces[0]), len(pts))
	}
	for i := range pts {
		if traces[0][i] != pts[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, traces[0][i], pts[i])
		}
	}
}

func TestRunManyRejectsConfigTrace(t *testing.T) {
	cfg := Config{N: 1000, Protocol: ThreeMajority(), Init: Balanced(4), Seed: 1,
		Trace: trace.NewSampler(trace.Spec{}, 0)}
	if _, err := RunMany(cfg, 2); err == nil || !strings.Contains(err.Error(), "RunManyTraced") {
		t.Fatalf("RunMany accepted Config.Trace: %v", err)
	}
}
