// Package plurality is a library for simulating and measuring
// plurality-consensus dynamics with many opinions, built around the
// protocols analyzed in "3-Majority and 2-Choices with Many Opinions"
// (Shimizu & Shiraga, PODC 2025): n vertices on a complete graph with
// self-loops each hold one of k opinions and update synchronously
// until consensus.
//
// The engine samples each synchronous round exactly from the
// count-space transition law in O(live) time — live being the number
// of surviving opinions, which only shrinks over a run — regardless of
// n and of the opinion-space size k (see DESIGN.md), so million-vertex,
// thousand-opinion processes run in microseconds per round. Besides the two headline dynamics the
// package provides Voter, h-Majority, the Median rule and the
// Undecided-State Dynamics, adversarial corruption, asynchronous
// scheduling, and agent-based execution on non-complete topologies.
//
// # Quick start
//
//	cfg := plurality.Config{
//		N:        1_000_000,
//		Protocol: plurality.ThreeMajority(),
//		Init:     plurality.Balanced(100),
//		Seed:     1,
//	}
//	res, err := plurality.Run(cfg)
//	// res.Rounds is the consensus time; res.Winner the final opinion.
//
// The reproduction of every figure, table and theorem of the paper
// lives in cmd/conbench; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for measured results. The same engine is served over
// HTTP by cmd/conserve — a cached, concurrent JSON API whose requests
// are byte-identical to the consim/consweep CLIs' output — via the
// shared internal/service request layer and job runner.
package plurality

import (
	"errors"
	"fmt"
	"sync"

	"plurality/internal/adversary"
	"plurality/internal/core"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/trace"
)

// Protocol selects a consensus dynamics. Construct values with
// ThreeMajority, TwoChoices, Voter, HMajority, Median or Undecided.
type Protocol struct {
	impl core.Protocol
}

// Name returns the protocol's short identifier (e.g. "3-majority").
func (p Protocol) Name() string {
	if p.impl == nil {
		return "unset"
	}
	return p.impl.Name()
}

// ThreeMajority returns the 3-Majority dynamics: each vertex samples
// three uniformly random vertices and adopts the first sample's
// opinion if the first two agree, else the third's (paper
// Definition 3.1). Consensus time Θ̃(min{k, √n}) (paper Theorem 1.1).
func ThreeMajority() Protocol { return Protocol{impl: core.ThreeMajority{}} }

// TwoChoices returns the 2-Choices dynamics: each vertex samples two
// uniformly random vertices and adopts their opinion only if they
// agree (paper Definition 3.1). Consensus time Θ̃(k) (paper
// Theorem 1.1).
func TwoChoices() Protocol { return Protocol{impl: core.TwoChoices{}} }

// Voter returns the 1-Choice (pull voter) baseline: adopt the opinion
// of one random vertex. No drift toward the plurality; Θ(n) expected
// consensus time.
func Voter() Protocol { return Protocol{impl: core.Voter{}} }

// HMajority returns the h-Majority dynamics: adopt the most frequent
// opinion among h random samples, ties broken uniformly. h must be at
// least 1; h = 3 coincides with ThreeMajority, h ≤ 2 with Voter.
func HMajority(h int) Protocol { return Protocol{impl: core.HMajority{H: h}} }

// Median returns the median rule of Doerr et al. (SPAA 2011) on the
// ordered opinion space {0 < 1 < ... < k−1}: adopt the median of your
// own opinion and two random samples.
func Median() Protocol { return Protocol{impl: core.Median{}} }

// Undecided returns the Undecided-State Dynamics. The last opinion
// slot of the configuration is the undecided state; consensus means
// all vertices decided on one real opinion.
func Undecided() Protocol { return Protocol{impl: core.Undecided{}} }

// LazyVariant wraps base with per-vertex laziness: each round every
// vertex keeps its opinion with probability beta (0 ≤ beta < 1) and
// otherwise applies base's rule. Laziness scales every drift term by
// (1−beta), stretching consensus times by ≈1/(1−beta) without
// changing the winner — the standard robustness ablation. Supported
// bases: ThreeMajority, TwoChoices, Voter, HMajority.
func LazyVariant(base Protocol, beta float64) Protocol {
	return Protocol{impl: core.Lazy{Base: base.impl, Beta: beta}}
}

// Init describes how the initial opinion configuration is generated
// for a given population size. Construct values with Balanced,
// PlantedBias, Zipf, Geometric, TwoLeaders, Counts or Fractions.
type Init struct {
	build func(n int64) (*population.Vector, error)
	// stateful marks generators whose successive builds differ (their
	// draws come from an internal stream). A pure init builds the same
	// configuration for every trial, which lets the sync batch executor
	// build it once and reuse it as a shared template; stateful inits
	// must keep the build-per-trial path.
	stateful bool
}

// Balanced splits the population as evenly as possible over k
// opinions — the worst case for consensus (γ₀ = 1/k).
func Balanced(k int) Init {
	return Init{build: func(n int64) (*population.Vector, error) {
		if k < 1 || int64(k) > n {
			return nil, fmt.Errorf("plurality: Balanced needs 1 <= k <= n, got k=%d n=%d", k, n)
		}
		return population.Balanced(n, k), nil
	}}
}

// PlantedBias starts balanced over k opinions and moves extraFraction
// of the population to opinion 0, realizing the plurality-consensus
// initial condition of the paper's Theorem 2.6.
func PlantedBias(k int, extraFraction float64) Init {
	return Init{build: func(n int64) (*population.Vector, error) {
		if k < 2 || int64(k) > n {
			return nil, fmt.Errorf("plurality: PlantedBias needs 2 <= k <= n, got k=%d n=%d", k, n)
		}
		if extraFraction < 0 || extraFraction >= 1 {
			return nil, fmt.Errorf("plurality: PlantedBias extraFraction %v out of [0,1)", extraFraction)
		}
		extra := int64(extraFraction * float64(n))
		if maxExtra := n - n/int64(k) - int64(k); extra > maxExtra {
			return nil, fmt.Errorf("plurality: PlantedBias extraFraction %v exceeds donor supply", extraFraction)
		}
		return population.PlantedBias(n, k, extra), nil
	}}
}

// Zipf distributes opinion fractions ∝ 1/(i+1)^s over k opinions;
// larger s concentrates support and raises γ₀.
func Zipf(k int, s float64) Init {
	return Init{build: func(n int64) (*population.Vector, error) {
		return population.Zipf(n, k, s)
	}}
}

// Geometric distributes opinion fractions ∝ ratio^i over k opinions,
// 0 < ratio <= 1.
func Geometric(k int, ratio float64) Init {
	return Init{build: func(n int64) (*population.Vector, error) {
		return population.Geometric(n, k, ratio)
	}}
}

// TwoLeaders gives opinions 0 and 1 jointly topFrac of the population
// with opinion 0 leading opinion 1 by bias, the rest spread evenly —
// the bias-amplification scenario of the paper's Lemmas 5.5/5.10.
func TwoLeaders(k int, topFrac, bias float64) Init {
	return Init{build: func(n int64) (*population.Vector, error) {
		return population.TwoLeaders(n, k, topFrac, bias)
	}}
}

// Counts uses an explicit count vector; Config.N must equal its sum
// (or be zero, in which case the sum is used).
func Counts(counts []int64) Init {
	copied := append([]int64(nil), counts...)
	return Init{build: func(n int64) (*population.Vector, error) {
		v, err := population.FromCounts(copied)
		if err != nil {
			return nil, err
		}
		if n != 0 && n != v.N() {
			return nil, fmt.Errorf("plurality: Counts sum %d does not match N=%d", v.N(), n)
		}
		return v, nil
	}}
}

// Fractions rounds the given fraction vector to n vertices by the
// largest-remainder method.
func Fractions(fracs []float64) Init {
	copied := append([]float64(nil), fracs...)
	return Init{build: func(n int64) (*population.Vector, error) {
		return population.FromFractions(n, copied)
	}}
}

// Dirichlet draws a fresh random fraction vector from the symmetric
// Dirichlet(concentration) distribution on every build — so
// multi-trial runs start from independent random configurations.
// Small concentrations give spiky starts (large γ₀), large ones
// near-balanced starts. The returned Init is safe for concurrent use
// and its draw sequence is deterministic in seed — but unlike every
// other generator it is draw-stateful: under parallel trial execution
// the assignment of draws to trial indices depends on scheduling, and
// multi-trial entry points consume one validation draw up front. For
// per-trial reproducibility, run with Parallelism: 1 or use a
// deterministic generator.
func Dirichlet(k int, concentration float64, seed uint64) Init {
	if k < 1 || concentration <= 0 {
		return Init{build: func(int64) (*population.Vector, error) {
			return nil, fmt.Errorf("plurality: Dirichlet needs k >= 1 and concentration > 0, got k=%d c=%v", k, concentration)
		}}
	}
	var mu sync.Mutex
	r := rng.New(rng.DeriveSeed(seed, 0x9e3779b9))
	return Init{stateful: true, build: func(n int64) (*population.Vector, error) {
		fracs := make([]float64, k)
		mu.Lock()
		r.Dirichlet(concentration, fracs)
		mu.Unlock()
		return population.FromFractions(n, fracs)
	}}
}

// Adversary corrupts up to F vertices per round (paper §2.5; Ghaffari
// & Lengler 2018). Construct with HinderAdversary, HelpAdversary or
// ScatterAdversary; the zero value is "no adversary".
type Adversary struct {
	impl adversary.Adversary
}

// HinderAdversary pushes the configuration back toward balance every
// round (moves up to f vertices from the plurality to the weakest
// surviving rival) — the stalling strategy.
func HinderAdversary(f int64) Adversary { return Adversary{impl: adversary.Hinder{F: f}} }

// HelpAdversary accelerates consensus (moves up to f vertices from the
// weakest surviving opinion to the plurality).
func HelpAdversary(f int64) Adversary { return Adversary{impl: adversary.Help{F: f}} }

// ScatterAdversary reassigns up to f random vertices to random
// surviving opinions — undirected noise.
func ScatterAdversary(f int64) Adversary { return Adversary{impl: adversary.Scatter{F: f}} }

// Snapshot is a read-only view of the configuration passed to
// Config.OnRound. It must not be retained after the callback returns.
type Snapshot struct {
	v *population.Vector
}

// N returns the number of vertices.
func (s Snapshot) N() int64 { return s.v.N() }

// K returns the number of opinion slots.
func (s Snapshot) K() int { return s.v.K() }

// Count returns the number of supporters of opinion i.
func (s Snapshot) Count(i int) int64 { return s.v.Count(i) }

// Alpha returns the fraction α(i) of vertices supporting opinion i.
func (s Snapshot) Alpha(i int) float64 { return s.v.Alpha(i) }

// Gamma returns γ = Σ α(i)², the paper's central potential function.
func (s Snapshot) Gamma() float64 { return s.v.Gamma() }

// Live returns the number of opinions with at least one supporter.
func (s Snapshot) Live() int { return s.v.Live() }

// Leader returns the current plurality opinion and its fraction.
func (s Snapshot) Leader() (opinion int, fraction float64) {
	op, c := s.v.MaxOpinion()
	return op, float64(c) / float64(s.v.N())
}

// Config describes a run.
type Config struct {
	// N is the number of vertices. Required (except with Counts init,
	// where it may be 0 to use the counts' sum).
	N int64
	// Protocol is the dynamics to run. Required.
	Protocol Protocol
	// Init generates the initial configuration. Required.
	Init Init
	// Seed makes runs reproducible; same Config (including Seed) ⇒
	// same result.
	Seed uint64
	// MaxRounds bounds the run; 0 uses a large default. A run that
	// exhausts the bound returns Consensus = false, not an error.
	MaxRounds int
	// Adversary, if set, corrupts the configuration after every round.
	Adversary Adversary
	// OnRound, if non-nil, observes every round (round 0 = initial
	// state). Returning true stops the run early.
	OnRound func(round int, s Snapshot) (stop bool)
	// Trace, if non-nil, samples per-round observables (round, γ, live
	// count, max-opinion density, Σα³) into the sampler under its
	// decimation policy — see internal/trace. Tracing never draws from
	// the run's RNG stream, so a traced and an untraced run of the same
	// Config produce identical Results; a nil Trace costs nothing.
	// Used by Run, RunAsync and RunOnGraph/RunGossip (via their own
	// configs); RunMany needs one sampler per trial — use
	// RunManyTraced.
	Trace *trace.Sampler
}

// Result reports how a run ended.
type Result struct {
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// Consensus reports whether all vertices agreed before MaxRounds.
	Consensus bool
	// Winner is the consensus opinion (or the current plurality if the
	// run was cut off).
	Winner int
}

var errConfig = errors.New("plurality: invalid config")

// experiment translates the legacy Config into its sync-mode
// Experiment. The Config-level OnRound and Trace (a caller-owned
// sampler) stay outside: the wrappers pass them straight into the
// shared trial path, preserving the legacy hook semantics exactly.
func (cfg Config) experiment() Experiment {
	return Experiment{
		Mode:      ModeSync,
		N:         cfg.N,
		Protocol:  cfg.Protocol,
		Init:      cfg.Init,
		Seed:      cfg.Seed,
		MaxRounds: cfg.MaxRounds,
		Adversary: cfg.Adversary,
	}
}

// Run executes one run of the configured dynamics.
//
// Deprecated: Run is the legacy single-run entry point, kept
// byte-identical forever; new code should use Experiment, which adds
// trials, parallelism, stop conditions and streaming. Run(cfg) is
// Experiment{Mode: ModeSync, NumTrials: 1, ...} with the same Seed.
func Run(cfg Config) (Result, error) {
	c, err := cfg.experiment().compile()
	if err != nil {
		return Result{}, err
	}
	// The legacy stream: rng.New(DeriveSeed(Seed, 0)) — the façade
	// seed of trial 0, which is why Experiment reproduces Run exactly.
	tr, err := c.runFacade(rng.DeriveSeed(cfg.Seed, 0), cfg.Trace, cfg.OnRound, 0)
	if err != nil {
		return Result{}, err
	}
	return Result{Rounds: int(tr.Rounds), Consensus: tr.Consensus, Winner: tr.Winner}, nil
}

// RunMany executes trials independent runs in parallel (deterministic
// in cfg.Seed and the trial index) and returns per-trial results.
// Config.OnRound is not supported here; use Run for observed runs.
//
// Deprecated: use Experiment with NumTrials set; RunMany(cfg, t) is
// Experiment{..., NumTrials: t}.Run() with the results unwrapped.
func RunMany(cfg Config, trials int) ([]Result, error) {
	return RunManyParallel(cfg, trials, 0)
}

// RunManyParallel is RunMany with an explicit trial-worker count
// (parallelism <= 0 means GOMAXPROCS). Trial i's stream depends only
// on (cfg.Seed, i), so the results are identical for every
// parallelism value.
//
// Deprecated: use Experiment with NumTrials and Parallelism set.
func RunManyParallel(cfg Config, trials, parallelism int) ([]Result, error) {
	results, _, err := runManyLegacy(cfg, trials, parallelism, nil)
	return results, err
}

// RunManyTraced is RunManyParallel with per-round tracing: each trial
// records its own trace under spec's decimation policy, and the
// returned traces are indexed by trial — so the output, like the
// Results, is identical for every parallelism value. Tracing never
// touches the trial RNG streams: the Results are byte-for-byte the
// ones RunManyParallel returns for the same Config.
//
// Deprecated: use Experiment with Trace set; each TrialResult carries
// its own points.
func RunManyTraced(cfg Config, trials, parallelism int, spec trace.Spec) ([]Result, [][]trace.Point, error) {
	return runManyLegacy(cfg, trials, parallelism, &spec)
}

// runManyLegacy is the shared body of the multi-trial wrappers: it
// validates with the legacy error texts, then collects the unified
// trial stream into the legacy result shapes.
func runManyLegacy(cfg Config, trials, parallelism int, spec *trace.Spec) ([]Result, [][]trace.Point, error) {
	e := cfg.experiment()
	// compile never sees an invalid count: config errors keep their
	// precedence (legacy order was validate-then-trials) and a bad
	// trials value keeps the legacy "trials = %d" text below.
	e.NumTrials = max(trials, 1)
	e.Parallelism = parallelism
	e.Trace = spec
	c, err := e.compile()
	if err != nil {
		return nil, nil, err
	}
	if trials < 1 {
		return nil, nil, fmt.Errorf("%w: trials = %d", errConfig, trials)
	}
	if cfg.OnRound != nil {
		return nil, nil, fmt.Errorf("%w: OnRound is not supported by RunMany", errConfig)
	}
	if cfg.Trace != nil {
		return nil, nil, fmt.Errorf("%w: Config.Trace is per-run; use RunManyTraced for multi-trial traces", errConfig)
	}
	// Validate the generator once up front so per-trial errors cannot
	// differ (Init.build is deterministic given n).
	if err := c.prebuild(); err != nil {
		return nil, nil, err
	}
	results := make([]Result, 0, trials)
	var traces [][]trace.Point
	if spec != nil {
		traces = make([][]trace.Point, 0, trials)
	}
	var runErr error
	c.stream(nil, func(i int, tr TrialResult) bool {
		results = append(results, Result{Rounds: int(tr.Rounds), Consensus: tr.Consensus, Winner: tr.Winner})
		if spec != nil {
			traces = append(traces, tr.Trace)
		}
		return true
	}, &runErr)
	if runErr != nil {
		return nil, nil, runErr
	}
	return results, traces, nil
}
