# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so a green `make check bench-diff` locally
# predicts a green pipeline.

.PHONY: check lint lint-fix test docs-check cluster-e2e bench-baseline bench-diff

check: lint test docs-check

# gofmt must be clean (the CI lint job fails on any unformatted file),
# vet must pass, and convet — the custom contract vet over the
# determinism / RNG-stream / durability analyzers (DESIGN.md
# "Statically enforced contracts") — must report zero unsuppressed
# diagnostics. Lint budget: `go run ./cmd/convet ./...` loads package
# metadata and export data from the build cache, so it finishes in
# about a second warm and well under 30s cold (conbench-style note for
# builders: the whole lint target is never the long pole; `go build
# ./...` also covers cmd/convet itself).
lint:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	go vet ./...
	go run ./cmd/convet ./...

# lint-fix applies the mechanical half (gofmt). convet findings have
# no autofix by design: either fix the contract violation or annotate
# the flagged line with `//lint:allow <analyzer> <reason>` — the
# runner prints every suppression so waivers stay visible.
lint-fix:
	gofmt -w .
	go run ./cmd/convet ./...

test:
	go build ./...
	go test ./...

# docs-check runs the documentation audits (internal/docs): every
# relative markdown link resolves, every internal/* package has a
# doc.go stating its contract, and every curl example in README.md and
# the conserve docs decodes as a valid service request. `go test ./...`
# covers these too; the named target exists for doc-only edits.
docs-check:
	go test -count=1 ./internal/docs/

# cluster-e2e reproduces the CI cluster job locally: the replicated
# ledger's unit/fleet tests plus the real 5-process kill/failover e2e
# (SIGKILL the leader and a worker mid-sweep; the merged NDJSON must be
# byte-identical to a single-process run), all under -race.
cluster-e2e:
	go test -race -count=1 -timeout 300s ./internal/cluster/...
	go test -race -count=1 -timeout 300s -run 'ClusterKillFailover' ./cmd/conserve/

# bench-baseline refreshes the committed bench-regression baseline.
# Run it on an otherwise idle machine after a deliberate perf change
# (or a hardware move) and commit the result; the CI bench-diff job
# compares every build against it with a ±25% fail / ±10% warn band.
bench-baseline:
	go run ./cmd/conbench -json BENCH_BASELINE.json -benchn 3

# bench-diff reproduces the CI gate locally.
bench-diff:
	go run ./cmd/conbench -json /tmp/conbench_current.json -benchn 3
	go run ./cmd/benchdiff -baseline BENCH_BASELINE.json -current /tmp/conbench_current.json
