# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so a green `make check bench-diff` locally
# predicts a green pipeline.

.PHONY: check lint test bench-baseline bench-diff

check: lint test

# gofmt must be clean (the CI lint step fails on any unformatted file)
# and vet must pass.
lint:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	go vet ./...

test:
	go build ./...
	go test ./...

# bench-baseline refreshes the committed bench-regression baseline.
# Run it on an otherwise idle machine after a deliberate perf change
# (or a hardware move) and commit the result; the CI bench-diff job
# compares every build against it with a ±25% fail / ±10% warn band.
bench-baseline:
	go run ./cmd/conbench -json BENCH_BASELINE.json -benchn 3

# bench-diff reproduces the CI gate locally.
bench-diff:
	go run ./cmd/conbench -json /tmp/conbench_current.json -benchn 3
	go run ./cmd/benchdiff -baseline BENCH_BASELINE.json -current /tmp/conbench_current.json
