package plurality

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"sync/atomic"

	"plurality/internal/adversary"
	"plurality/internal/async"
	"plurality/internal/core"
	"plurality/internal/gossip"
	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sim"
	"plurality/internal/stats"
	"plurality/internal/stop"
	"plurality/internal/trace"
)

// Mode selects an execution engine for an Experiment. The zero value
// is ModeSync.
type Mode string

// Execution modes.
const (
	// ModeSync is the exact count-space engine on the complete graph
	// with self-loops — the paper's setting and the default. O(live)
	// per round; supports every Protocol, adversaries and OnRound.
	ModeSync Mode = "sync"
	// ModeAsync updates one uniformly random vertex per tick
	// (paper §1.1); Rounds are reported as Ticks/N. Supports
	// ThreeMajority, TwoChoices and Voter.
	ModeAsync Mode = "async"
	// ModeGraph runs the per-vertex agent engine on an explicit
	// Topology (paper §2.5 open problem). O(n) per round, sharded
	// across cores. Supports ThreeMajority, TwoChoices and Voter.
	ModeGraph Mode = "graph"
	// ModeGossip executes the dynamics as a real message-passing
	// system (one goroutine per node) with optional crash/loss faults.
	// Supports ThreeMajority, TwoChoices and Voter.
	ModeGossip Mode = "gossip"
)

// DefaultMaxTicks is the tick budget of an async-mode Experiment that
// leaves MaxTicks zero.
const DefaultMaxTicks int64 = 10_000_000_000

// Experiment is the single description of a simulation batch: one mode
// selector plus the union of every mode's knobs, validated once in one
// place. It replaces the four divergent entry-point families
// (Run/RunMany*, RunAsync, RunOnGraph, RunGossip), which remain as
// deprecated wrappers.
//
// Execute with Run (all trials collected into an Outcome) or Trials
// (a streaming iterator). Both are deterministic in the Experiment
// alone: trial i's façade seed is rng.DeriveSeed(Seed, i) — consumed
// directly as the trial's RNG stream in mode sync, expanded once more
// by the async/graph/gossip engines — so results are byte-identical
// for every Parallelism value, and a 1-trial sync Experiment
// reproduces Run with the same Seed. This is exactly the service
// layer's frozen per-trial seed contract (see internal/service).
//
// One caveat, inherited from the legacy RunMany: the draw-stateful
// Dirichlet init keeps its own stream outside the per-trial seeds, so
// its draw-to-trial assignment depends on scheduling when
// Parallelism != 1, and the multi-trial entry points consume one
// validation draw a bare Run does not. Every other Init generator is
// a pure function of (n, parameters) and is covered by the contract
// above.
type Experiment struct {
	// Mode selects the execution engine; the zero value is ModeSync.
	Mode Mode
	// N is the number of vertices. Required (except with Counts init
	// in mode sync/async, where 0 means "use the counts' sum").
	N int64
	// Protocol is the dynamics to run. Required. Non-sync modes
	// support ThreeMajority, TwoChoices and Voter.
	Protocol Protocol
	// Init generates each trial's initial configuration. Required.
	Init Init
	// Seed is the base seed; trial i derives everything from
	// rng.DeriveSeed(Seed, i).
	Seed uint64
	// NumTrials is the number of independent trials (0 means 1). The
	// Trials method streams them; it could not share the field's
	// natural name.
	NumTrials int
	// FirstTrial, when positive, skips trials 0..FirstTrial-1: only
	// trials FirstTrial..NumTrials-1 are executed and delivered, each
	// still derived from rng.DeriveSeed(Seed, trial) under its absolute
	// index. Because trials are independent in exactly that index, the
	// delivered suffix is byte-identical to the same trials of a full
	// run — the property the service layer's checkpoint/resume leans
	// on: re-running an interrupted request with FirstTrial set to the
	// checkpoint continues it exactly. Must be in [0, NumTrials]
	// (FirstTrial == NumTrials runs nothing).
	FirstTrial int
	// Parallelism bounds the worker goroutines (0 = GOMAXPROCS):
	// trial fan-out in every mode — memory-clamped for the graph and
	// gossip engines — with the leftover budget sharding each graph
	// run's vertex loop. Results never depend on it.
	Parallelism int
	// MaxRounds bounds each trial (<= 0 = the engine default, matching
	// the legacy entry points). A trial that exhausts the budget
	// reports Consensus = false, not an error.
	MaxRounds int
	// MaxTicks bounds each async-mode trial (0 = DefaultMaxTicks).
	// Only valid in ModeAsync.
	MaxTicks int64
	// Stop, when set, ends each trial at the first round boundary
	// where the condition holds — recording hitting times directly
	// instead of simulating to consensus. The zero value is
	// StopAtConsensus(). Works in every mode and never perturbs the
	// RNG streams: a stopped trial is the prefix of the unstopped one.
	Stop StopCondition
	// Adversary, if set, corrupts the configuration after every round.
	// Only valid in ModeSync.
	Adversary Adversary
	// OnRound, if non-nil, observes every round of every trial (round
	// 0 = initial state); returning true stops that trial. It runs on
	// the trial's worker goroutine, so with Parallelism != 1 it must
	// be safe for concurrent calls with distinct trial indices. Only
	// valid in ModeSync.
	OnRound func(trial, round int, s Snapshot) (stop bool)
	// Topology is the graph family. Required in — and only valid in —
	// ModeGraph.
	Topology Topology
	// Crashed lists node IDs crashed from the start. Only valid in
	// ModeGossip.
	Crashed []int
	// LossProb is the per-pull loss probability in [0, 1). Only valid
	// in ModeGossip.
	LossProb float64
	// Trace, if non-nil, records a per-round trace of every trial
	// under the spec's decimation policy (see internal/trace); each
	// TrialResult carries its own points. Tracing never touches the
	// RNG streams: traced results are byte-identical to untraced.
	Trace *trace.Spec
	// noBatch forces the classic build-per-trial sync executor even
	// where the batch executor would engage. Unexported: it exists for
	// the batch≡serial equivalence tests, which run both executors on
	// the same Experiment and require identical bytes.
	noBatch bool
}

// TrialResult is one trial's outcome, mode-tagged and carrying the
// hitting-time observables stop conditions are run for.
type TrialResult struct {
	// Trial is the trial index.
	Trial int
	// Mode echoes the experiment's (normalized) mode.
	Mode Mode
	// Rounds is the consensus (or stopping) time in
	// synchronous(-equivalent) rounds; fractional only in ModeAsync
	// (Ticks/N).
	Rounds float64
	// Ticks is the number of single-vertex updates (ModeAsync only;
	// 0 otherwise).
	Ticks int64
	// Consensus reports whether the trial reached consensus within its
	// budget (all vertices agree; in gossip mode, all alive nodes).
	Consensus bool
	// Stopped reports whether the Stop condition ended the trial.
	Stopped bool
	// Winner is the consensus opinion, or the plurality at cutoff.
	Winner int
	// Gamma and Live are the final configuration's potential Γ = Σ α²
	// and live-opinion count — the phase observables at the recorded
	// round.
	Gamma float64
	Live  int
	// FinalCounts is the final opinion histogram including frozen
	// crashed nodes (ModeGossip only; nil otherwise).
	FinalCounts []int64
	// Trace holds the trial's sampled round trace when
	// Experiment.Trace was set (nil otherwise).
	Trace []trace.Point
}

// Outcome is the collected result of Experiment.Run.
type Outcome struct {
	// Mode echoes the experiment's (normalized) mode.
	Mode Mode
	// Trials holds the per-trial results, indexed by trial.
	Trials []TrialResult
}

// Converged returns how many trials reached consensus.
func (o *Outcome) Converged() int {
	n := 0
	for _, t := range o.Trials {
		if t.Consensus {
			n++
		}
	}
	return n
}

// MedianRounds returns the median of the per-trial round counts
// (converged or not); 0 for an empty outcome.
func (o *Outcome) MedianRounds() float64 {
	if len(o.Trials) == 0 {
		return 0
	}
	rounds := make([]float64, len(o.Trials))
	for i, t := range o.Trials {
		rounds[i] = t.Rounds
	}
	return stats.Median(rounds)
}

// Run executes the experiment's trials across the parallel scheduler
// and returns them collected into an Outcome. The error is either a
// validation error or — for the rare per-trial construction failures
// the upfront validation cannot rule out (e.g. a random-regular
// topology build exhausting its attempts) — the error of the lowest
// failing trial index.
func (e Experiment) Run() (*Outcome, error) {
	c, err := e.compile()
	if err != nil {
		return nil, err
	}
	if err := c.prebuild(); err != nil {
		return nil, err
	}
	out := &Outcome{Mode: c.e.Mode, Trials: make([]TrialResult, 0, c.e.NumTrials)}
	var runErr error
	c.stream(nil, func(i int, tr TrialResult) bool {
		out.Trials = append(out.Trials, tr)
		return true
	}, &runErr)
	if runErr != nil {
		return nil, runErr
	}
	return out, nil
}

// Trials returns an iterator streaming the experiment's trials in
// deterministic index order as the parallel scheduler completes them:
// trial i is yielded as soon as trials 0..i have all finished, so a
// consumer sees identical bytes for every Parallelism value while
// later trials keep running in the background. Breaking out of the
// loop cancels the trials that have not started yet.
//
// Validation errors — including the static topology/fault-knob shape
// checks — surface here before any trial runs. The one per-trial
// failure validation cannot rule out (a random-regular topology build
// exhausting its pairing attempts, probabilistically negligible) ends
// the sequence early at that index; use Run to observe it as an
// error.
func (e Experiment) Trials() (iter.Seq2[int, TrialResult], error) {
	c, err := e.compile()
	if err != nil {
		return nil, err
	}
	if err := c.prebuild(); err != nil {
		return nil, err
	}
	return func(yield func(int, TrialResult) bool) {
		c.stream(nil, yield, nil)
	}, nil
}

// Stream executes the experiment's trials, delivering each to yield in
// deterministic index order exactly as Trials does, with two additions
// the durable service layer needs: a context that cancels cooperatively
// at trial boundaries (no new trial starts after ctx fires; in-flight
// trials finish; Stream returns ctx.Err()), and an error return — a
// validation error before any trial runs, or the lowest failing trial
// index's error (trial panics included). Combined with FirstTrial,
// this is the checkpoint/resume primitive: every yielded trial is a
// complete unit of progress, and an interrupted stream can be continued
// by a new Stream with FirstTrial set past the last yielded index,
// producing bytes identical to the uninterrupted run.
//
// yield returning false stops the stream early without error, as in
// Trials.
func (e Experiment) Stream(ctx context.Context, yield func(int, TrialResult) bool) error {
	c, err := e.compile()
	if err != nil {
		return err
	}
	if err := c.prebuild(); err != nil {
		return err
	}
	var runErr error
	c.stream(ctx, yield, &runErr)
	return runErr
}

// normalize fills the experiment's defaults.
func (e Experiment) normalize() Experiment {
	if e.Mode == "" {
		e.Mode = ModeSync
	}
	if e.NumTrials == 0 {
		e.NumTrials = 1
	}
	if e.MaxRounds < 0 {
		// The legacy entry points treated any non-positive budget as
		// "use the engine default"; the unified path keeps that.
		e.MaxRounds = 0
	}
	if e.Mode == ModeAsync && e.MaxTicks == 0 {
		e.MaxTicks = DefaultMaxTicks
	}
	return e
}

// compiled is a validated experiment with its mode's engine bindings
// resolved — the one execution path behind Run, Trials and the
// deprecated per-mode wrappers.
type compiled struct {
	e    Experiment
	stop stop.Spec
	// sync bindings
	proto   core.Protocol
	post    func(round int, r *rng.Rand, v *population.Vector)
	usdDone func(v *population.Vector) bool
	// template is the shared initial configuration of the sync batch
	// executor (nil when the experiment runs build-per-trial: stateful
	// init, non-sync mode, or noBatch).
	template *population.Vector
	// async binding
	dyn async.Dynamics
	// graph binding
	rule graph.Rule
	// gossip binding
	grule gossip.Rule
}

// compile validates the experiment once and resolves its engine
// bindings. Error texts match the legacy per-mode entry points, whose
// wrappers share this path.
func (e Experiment) compile() (*compiled, error) {
	e = e.normalize()
	c := &compiled{e: e, stop: e.Stop.spec}
	if e.NumTrials < 0 {
		return nil, fmt.Errorf("%w: NumTrials = %d", errConfig, e.NumTrials)
	}
	if e.FirstTrial < 0 || e.FirstTrial > e.NumTrials {
		return nil, fmt.Errorf("%w: FirstTrial = %d with NumTrials = %d", errConfig, e.FirstTrial, e.NumTrials)
	}
	if err := c.stop.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", errConfig, err)
	}
	if e.Trace != nil {
		spec := e.Trace.Normalize()
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", errConfig, err)
		}
		c.e.Trace = &spec
	}
	// Per-mode knobs are rejected outside their mode rather than
	// silently ignored: the Experiment is validated once, loudly.
	if e.Mode != ModeAsync && e.MaxTicks != 0 {
		return nil, fmt.Errorf("%w: MaxTicks is only valid in ModeAsync", errConfig)
	}
	if e.Mode != ModeSync {
		if e.Adversary.impl != nil {
			return nil, fmt.Errorf("%w: Adversary is only valid in ModeSync", errConfig)
		}
		if e.OnRound != nil {
			return nil, fmt.Errorf("%w: OnRound is only valid in ModeSync", errConfig)
		}
	}
	if e.Mode != ModeGraph && e.Topology.build != nil {
		return nil, fmt.Errorf("%w: Topology is only valid in ModeGraph", errConfig)
	}
	if e.Mode != ModeGossip && (e.LossProb != 0 || len(e.Crashed) > 0) {
		return nil, fmt.Errorf("%w: Crashed/LossProb are only valid in ModeGossip", errConfig)
	}

	switch e.Mode {
	case ModeSync:
		if e.Protocol.impl == nil {
			return nil, fmt.Errorf("%w: Protocol is required", errConfig)
		}
		if e.Init.build == nil {
			return nil, fmt.Errorf("%w: Init is required", errConfig)
		}
		if e.N < 0 {
			return nil, fmt.Errorf("%w: N = %d", errConfig, e.N)
		}
		c.proto = e.Protocol.impl
		c.post = adversary.PostRound(e.Adversary.impl)
		if _, isUSD := e.Protocol.impl.(core.Undecided); isUSD {
			c.usdDone = func(v *population.Vector) bool {
				_, ok := core.DecidedConsensus(v)
				return ok
			}
		}
	case ModeAsync:
		if e.Protocol.impl == nil {
			return nil, fmt.Errorf("%w: Protocol is required", errConfig)
		}
		if e.Init.build == nil {
			return nil, fmt.Errorf("%w: Init is required", errConfig)
		}
		if e.N < 0 {
			return nil, fmt.Errorf("%w: N = %d", errConfig, e.N)
		}
		if e.MaxTicks < 0 {
			return nil, fmt.Errorf("%w: MaxTicks = %d", errConfig, e.MaxTicks)
		}
		switch e.Protocol.Name() {
		case "3-majority":
			c.dyn = async.ThreeMajority
		case "2-choices":
			c.dyn = async.TwoChoices
		case "voter":
			c.dyn = async.Voter
		default:
			return nil, fmt.Errorf("%w: protocol %q has no asynchronous variant", errConfig, e.Protocol.Name())
		}
	case ModeGraph:
		if e.N < 1 {
			return nil, fmt.Errorf("%w: N = %d", errConfig, e.N)
		}
		if e.Topology.build == nil {
			return nil, fmt.Errorf("%w: Topology is required", errConfig)
		}
		if e.Init.build == nil {
			return nil, fmt.Errorf("%w: Init is required", errConfig)
		}
		rule, err := ruleFor(e.Protocol)
		if err != nil {
			return nil, err
		}
		c.rule = rule
		// The static half of the topology's shape validation runs here
		// (same error texts as the per-trial build), so a misshapen
		// topology fails the Experiment loudly instead of per trial.
		if e.Topology.check != nil {
			if err := e.Topology.check(int(e.N)); err != nil {
				return nil, err
			}
		}
	case ModeGossip:
		if e.N < 1 {
			return nil, fmt.Errorf("%w: N = %d", errConfig, e.N)
		}
		if e.Init.build == nil {
			return nil, fmt.Errorf("%w: Init is required", errConfig)
		}
		// Mirror gossip.New's static checks so the invalid knob fails
		// the Experiment loudly instead of per trial (positive form,
		// so NaN is rejected too).
		if !(e.LossProb >= 0 && e.LossProb < 1) {
			return nil, fmt.Errorf("%w: LossProb = %v", errConfig, e.LossProb)
		}
		for _, id := range e.Crashed {
			if id < 0 || int64(id) >= e.N {
				return nil, fmt.Errorf("%w: crashed id %d out of range", errConfig, id)
			}
		}
		switch e.Protocol.Name() {
		case "3-majority":
			c.grule = gossip.ThreeMajority
		case "2-choices":
			c.grule = gossip.TwoChoices
		case "voter":
			c.grule = gossip.Voter
		default:
			return nil, fmt.Errorf("%w: protocol %q has no gossip form", errConfig, e.Protocol.Name())
		}
	default:
		return nil, fmt.Errorf("%w: unknown Mode %q", errConfig, e.Mode)
	}
	return c, nil
}

// prebuild validates the init generator with one throwaway build, so
// per-trial init errors cannot occur mid-batch (the generator is
// deterministic given n — draw-stateful inits like Dirichlet just
// advance their stream by one configuration, exactly as the legacy
// RunMany validation did).
func (c *compiled) prebuild() error {
	v, err := c.e.Init.build(c.e.N)
	if err != nil {
		return err
	}
	// A pure init builds the same configuration on every call, so the
	// validation build doubles as the batch executor's shared template.
	if c.e.Mode == ModeSync && !c.e.Init.stateful {
		c.template = v
	}
	return nil
}

// Worker budgets for the trial fan-out of the memory-heavy engines.
// The per-request shape caps (internal/service's MaxGraphN,
// MaxGraphEdges, MaxGossipN) were sized for one run at a time; these
// clamps keep a maximal experiment on a many-core machine from
// multiplying that single-run peak by the core count.
const (
	// graphVertexBudget caps the total vertices materialized at once
	// across a graph experiment's concurrent trials (each live trial
	// holds its own topology and two opinion arrays).
	graphVertexBudget = 1 << 25
	// graphEdgeBudget caps the total adjacency edge slots — the
	// dominant cost for dense topologies — at twice the service
	// layer's per-topology MaxGraphEdges, so a maximal adjacency caps
	// at two concurrent builds.
	graphEdgeBudget = 1 << 30
	// gossipNodeBudget caps the node goroutines alive at once across a
	// gossip experiment's concurrent trials.
	gossipNodeBudget = 1 << 18
)

// workerSplit turns the parallelism budget into (trial workers,
// per-trial graph shard workers). Both levels are deterministic, so
// the split affects wall-clock only.
func (c *compiled) workerSplit(parallelism int) (trialWorkers, graphWorkers int) {
	switch c.e.Mode {
	case ModeGraph:
		trialWorkers = parallelism
		if trialWorkers > c.e.NumTrials {
			trialWorkers = c.e.NumTrials
		}
		if byMem := int(graphVertexBudget / c.e.N); byMem < trialWorkers {
			trialWorkers = byMem
		}
		if degree := c.e.Topology.degree; degree > 0 {
			if byEdges := int(graphEdgeBudget / (c.e.N * degree)); byEdges < trialWorkers {
				trialWorkers = byEdges
			}
		}
		if trialWorkers < 1 {
			trialWorkers = 1
		}
		// The remainder of the budget shards each run's vertex loop;
		// rounding up means transient mild oversubscription rather than
		// budgeted cores idling when the division is uneven.
		graphWorkers = (parallelism + trialWorkers - 1) / trialWorkers
		return trialWorkers, graphWorkers
	case ModeGossip:
		trialWorkers = int(gossipNodeBudget / c.e.N)
		if trialWorkers < 1 {
			trialWorkers = 1
		}
		if trialWorkers > parallelism {
			trialWorkers = parallelism
		}
		return trialWorkers, 0
	default:
		return parallelism, 0
	}
}

// trialOutcome carries one trial's result (or its construction error)
// from a worker to the in-order consumer.
type trialOutcome struct {
	res TrialResult
	err error
}

// errTrialCancelled marks trials skipped after the consumer broke out
// of the stream or an earlier trial failed; it never escapes stream.
var errTrialCancelled = fmt.Errorf("plurality: trial cancelled")

// stream runs trials FirstTrial..NumTrials-1 on the deterministic
// trial scheduler and delivers results to yield in index order as they
// complete. Per-trial randomness depends only on (Seed, trial), so the
// delivered bytes are identical for every Parallelism value. On a
// per-trial error the stream stops at that index (the lowest failing
// one, since delivery is in index order) and reports it through
// errOut; remaining unstarted trials are skipped. A panic inside a
// trial body is contained to that trial and surfaces the same way — a
// poisoned configuration fails one experiment, not the process.
//
// ctx, when non-nil, cancels cooperatively at trial boundaries: no new
// trial starts after it fires, in-flight trials run to completion, and
// errOut reports ctx.Err() — the contract the service layer's drain
// and job-timeout paths rely on to checkpoint cleanly.
func (c *compiled) stream(ctx context.Context, yield func(int, TrialResult) bool, errOut *error) {
	trials := c.e.NumTrials
	first := c.e.FirstTrial
	if first >= trials {
		return
	}
	parallelism := c.e.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	trialWorkers, graphWorkers := c.workerSplit(parallelism)
	var samplers []*trace.Sampler
	if c.e.Trace != nil {
		samplers = make([]*trace.Sampler, trials)
		for i := first; i < trials; i++ {
			samplers[i] = trace.NewSampler(*c.e.Trace, i)
		}
	}
	// Buffered per-trial slots: every worker sends exactly once and
	// never blocks, so an early consumer break leaks nothing.
	outs := make([]chan trialOutcome, trials)
	for i := first; i < trials; i++ {
		outs[i] = make(chan trialOutcome, 1)
	}
	var cancelled atomic.Bool
	if c.batchable() {
		go c.streamBatch(ctx, trialWorkers, samplers, outs, &cancelled)
	} else {
		go func() {
			// The scheduler's own lowest-index error reporting is unused:
			// the consumer below sees errors in index order already.
			_ = sim.ForEachTrialCtx(ctx, trials-first, trialWorkers, func(idx int) error {
				i := first + idx
				if cancelled.Load() {
					outs[i] <- trialOutcome{err: errTrialCancelled}
					return nil
				}
				var tr *trace.Sampler
				if samplers != nil {
					tr = samplers[i]
				}
				var onRound func(round int, s Snapshot) bool
				if c.e.OnRound != nil {
					hook := c.e.OnRound
					onRound = func(round int, s Snapshot) bool { return hook(i, round, s) }
				}
				res, err := func() (res TrialResult, err error) {
					// Contain trial panics here, where the per-trial result
					// slot can still be delivered; the scheduler's own
					// recovery cannot reach outs[i].
					defer func() {
						if p := recover(); p != nil {
							err = fmt.Errorf("plurality: trial %d panicked: %v", i, p)
						}
					}()
					return c.runFacade(rng.DeriveSeed(c.e.Seed, uint64(i)), tr, onRound, graphWorkers)
				}()
				if err != nil {
					outs[i] <- trialOutcome{err: err}
					return err
				}
				res.Trial = i
				if tr != nil {
					res.Trace = tr.Points()
				}
				outs[i] <- trialOutcome{res: res}
				return nil
			})
		}()
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for i := first; i < trials; i++ {
		// Cancellation takes priority over buffered results: a plain
		// two-way select picks randomly when both are ready, which
		// would let a cancelled consumer drain to completion whenever
		// the producers happen to outrun it.
		select {
		case <-done:
			cancelled.Store(true)
			if errOut != nil {
				*errOut = ctx.Err()
			}
			return
		default:
		}
		select {
		case <-done:
			cancelled.Store(true)
			if errOut != nil {
				*errOut = ctx.Err()
			}
			return
		case out := <-outs[i]:
			if out.err != nil {
				cancelled.Store(true)
				if errOut != nil {
					*errOut = out.err
				}
				return
			}
			if !yield(i, out.res) {
				cancelled.Store(true)
				return
			}
		}
	}
}

// batchMaxWidth caps the trial range a batch worker claims at once:
// wide enough to amortize the runner's shared state over many trials,
// narrow enough that cancellation (checked per trial) and in-order
// delivery stay responsive on long ranges.
const batchMaxWidth = 64

// batchable reports whether the experiment runs on the sync batch
// executor: multiple trials of one pure-init sync configuration, with
// no OnRound hook (whose Snapshot contract exposes the Vector
// representation the flat kernel does not materialize). Adversaries,
// USD protocols and protocols without a flat kernel still batch — the
// runner routes them through the generic engine with the template and
// scratch arenas shared.
func (c *compiled) batchable() bool {
	return c.e.Mode == ModeSync &&
		c.template != nil &&
		c.e.OnRound == nil &&
		!c.e.noBatch &&
		c.e.NumTrials-c.e.FirstTrial > 1
}

// streamBatch is stream's producer for the batch executor: workers
// claim contiguous trial ranges (sim.ForEachTrialRangeCtx) and run
// each range through one BatchRunner, so the template clone, sampler
// arenas and flat-kernel state are built once per range instead of
// once per trial. Each trial still consumes rng.DeriveSeed(Seed, i)
// in the serial order, so the delivered bytes are identical to the
// classic executor for every Parallelism and width.
func (c *compiled) streamBatch(ctx context.Context, trialWorkers int, samplers []*trace.Sampler, outs []chan trialOutcome, cancelled *atomic.Bool) {
	trials := c.e.NumTrials
	first := c.e.FirstTrial
	span := trials - first
	width := (span + trialWorkers - 1) / trialWorkers
	if width > batchMaxWidth {
		width = batchMaxWidth
	}
	_ = sim.ForEachTrialRangeCtx(ctx, span, trialWorkers, width, func(lo, hi int) error {
		runner := core.NewBatchRunner(c.proto, c.template)
		for idx := lo; idx < hi; idx++ {
			i := first + idx
			if cancelled.Load() {
				outs[i] <- trialOutcome{err: errTrialCancelled}
				continue
			}
			var tr *trace.Sampler
			if samplers != nil {
				tr = samplers[i]
			}
			res, err := func() (res TrialResult, err error) {
				defer func() {
					if p := recover(); p != nil {
						err = fmt.Errorf("plurality: trial %d panicked: %v", i, p)
					}
				}()
				return c.runBatchTrial(runner, i, tr), nil
			}()
			if err != nil {
				outs[i] <- trialOutcome{err: err}
				// The panic may have left the shared runner state
				// mid-round; later trials in the range get a fresh one.
				runner = core.NewBatchRunner(c.proto, c.template)
				continue
			}
			res.Trial = i
			if tr != nil {
				res.Trace = tr.Points()
			}
			outs[i] <- trialOutcome{res: res}
		}
		return nil
	})
}

// runBatchTrial is runFacade's sync arm on a shared BatchRunner: the
// same observer wiring and result mapping, with the per-trial
// Init.build replaced by the runner's template reuse.
func (c *compiled) runBatchTrial(runner *core.BatchRunner, trial int, tr *trace.Sampler) TrialResult {
	stopped := false
	cfg := core.BatchRunConfig{
		MaxRounds: c.e.MaxRounds,
		PostRound: c.post,
		Done:      c.usdDone,
	}
	if tr != nil || !c.stop.IsZero() {
		spec := c.stop
		hasStop := !spec.IsZero()
		cfg.Observer = func(round int, v core.View) bool {
			tr.Observe(int64(round), v) // nil-safe no-op when untraced
			if hasStop && spec.Done(int64(round), v) {
				stopped = true
				return true
			}
			return false
		}
	}
	res := runner.RunTrial(rng.DeriveSeed(c.e.Seed, uint64(trial)), cfg)
	return TrialResult{
		Mode:      ModeSync,
		Rounds:    float64(res.Rounds),
		Consensus: res.Consensus,
		Stopped:   stopped,
		Winner:    res.Winner,
		Gamma:     res.Gamma,
		Live:      res.Live,
	}
}

// runFacade executes one trial from its façade seed — the single
// engine dispatch shared by Experiment trials (facadeSeed =
// rng.DeriveSeed(Seed, trial)) and the deprecated per-mode wrappers
// (facadeSeed = their Config's Seed, preserving the legacy streams
// byte-for-byte). The sync engine consumes the façade seed directly as
// its RNG stream; the other engines expand it once more, exactly as
// their legacy entry points always did. tr and onRound observe rounds;
// graphWorkers bounds the sharded graph rounds (ignored elsewhere).
func (c *compiled) runFacade(facadeSeed uint64, tr *trace.Sampler, onRound func(round int, s Snapshot) bool, graphWorkers int) (TrialResult, error) {
	stopped := false
	var stopFn func(round int64, v *population.Vector) bool
	if !c.stop.IsZero() {
		spec := c.stop
		stopFn = func(round int64, v *population.Vector) bool {
			if spec.Done(round, v) {
				stopped = true
				return true
			}
			return false
		}
	}
	switch c.e.Mode {
	case ModeSync:
		v, err := c.e.Init.build(c.e.N)
		if err != nil {
			return TrialResult{}, err
		}
		rc := core.RunConfig{
			MaxRounds: c.e.MaxRounds,
			PostRound: c.post,
			Done:      c.usdDone,
		}
		if tr != nil || onRound != nil || stopFn != nil {
			rc.Observer = func(round int, v *population.Vector) bool {
				tr.Observe(int64(round), v) // nil-safe no-op when untraced
				hit := false
				if onRound != nil && onRound(round, Snapshot{v: v}) {
					hit = true
				}
				if stopFn != nil && stopFn(int64(round), v) {
					hit = true
				}
				return hit
			}
		}
		res := core.Run(rng.New(facadeSeed), c.proto, v, rc)
		return TrialResult{
			Mode:      ModeSync,
			Rounds:    float64(res.Rounds),
			Consensus: res.Consensus,
			Stopped:   stopped,
			Winner:    res.Winner,
			Gamma:     res.Gamma,
			Live:      res.Live,
		}, nil
	case ModeAsync:
		v, err := c.e.Init.build(c.e.N)
		if err != nil {
			return TrialResult{}, err
		}
		r := rng.New(rng.DeriveSeed(facadeSeed, 0))
		res := async.RunHooked(r, c.dyn, v, c.e.MaxTicks, tr, stopFn)
		return TrialResult{
			Mode:      ModeAsync,
			Rounds:    res.Rounds,
			Ticks:     res.Ticks,
			Consensus: res.Consensus,
			Stopped:   stopped,
			Winner:    res.Winner,
			Gamma:     res.Gamma,
			Live:      res.Live,
		}, nil
	case ModeGraph:
		r := rng.New(rng.DeriveSeed(facadeSeed, 0))
		g, err := c.e.Topology.build(int(c.e.N), r)
		if err != nil {
			return TrialResult{}, err
		}
		v, err := c.e.Init.build(c.e.N)
		if err != nil {
			return TrialResult{}, err
		}
		st, err := graph.NewState(g, v.K(), graph.ShuffledAssignment(v, r))
		if err != nil {
			return TrialResult{}, err
		}
		maxRounds := c.e.MaxRounds
		if maxRounds <= 0 {
			maxRounds = 100_000
		}
		res := graph.RunShardedHooked(rng.DeriveSeed(facadeSeed, 1), st, c.rule, maxRounds, graphWorkers, tr, stopFn)
		return TrialResult{
			Mode:      ModeGraph,
			Rounds:    float64(res.Rounds),
			Consensus: res.Consensus,
			Stopped:   stopped,
			Winner:    int(res.Winner),
			Gamma:     res.Gamma,
			Live:      res.Live,
		}, nil
	case ModeGossip:
		v, err := c.e.Init.build(c.e.N)
		if err != nil {
			return TrialResult{}, err
		}
		nw, err := gossip.New(gossip.Config{
			N:        int(c.e.N),
			Rule:     c.grule,
			Init:     v,
			Seed:     facadeSeed,
			Crashed:  c.e.Crashed,
			LossProb: c.e.LossProb,
		})
		if err != nil {
			return TrialResult{}, err
		}
		defer nw.Close()
		maxRounds := c.e.MaxRounds
		if maxRounds <= 0 {
			maxRounds = 100_000
		}
		res := nw.RunHooked(maxRounds, tr, stopFn)
		final := nw.Counts()
		counts := make([]int64, final.K())
		for i := range counts {
			counts[i] = final.Count(i)
		}
		return TrialResult{
			Mode:        ModeGossip,
			Rounds:      float64(res.Rounds),
			Consensus:   res.Consensus,
			Stopped:     stopped,
			Winner:      int(res.Winner),
			Gamma:       res.Gamma,
			Live:        res.Live,
			FinalCounts: counts,
		}, nil
	}
	panic(fmt.Sprintf("plurality: unreachable mode %q", c.e.Mode)) // compile validated the mode
}
