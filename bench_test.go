package plurality

import (
	"testing"

	"plurality/internal/experiments"
)

// The Benchmark<ID> benchmarks regenerate each of the paper's figures,
// tables and quantitative theorems at Quick scale — one benchmark per
// artifact, as indexed in DESIGN.md. Run a single one with e.g.
//
//	go test -bench=BenchmarkExperimentFig1 -benchtime=1x
//
// For paper-credible sizes use cmd/conbench with -scale full.

func benchmarkExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	opts := experiments.Options{Scale: experiments.Quick, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(opts)
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// BenchmarkExperimentFig1 regenerates Figure 1 (consensus time vs k
// for both dynamics).
func BenchmarkExperimentFig1(b *testing.B) { benchmarkExperiment(b, "fig1") }

// BenchmarkExperimentTable1 regenerates Table 1 (the six drift
// inequalities under their stopping-time conditions).
func BenchmarkExperimentTable1(b *testing.B) { benchmarkExperiment(b, "table1") }

// BenchmarkExperimentThm11 regenerates the Theorem 1.1 scaling
// exponents (doubling exponents in k; n-scaling at k = n).
func BenchmarkExperimentThm11(b *testing.B) { benchmarkExperiment(b, "thm11") }

// BenchmarkExperimentThm21 regenerates the Theorem 2.1 consensus-time
// sweep over the initial norm γ₀.
func BenchmarkExperimentThm21(b *testing.B) { benchmarkExperiment(b, "thm21") }

// BenchmarkExperimentThm22 regenerates the Theorem 2.2 norm-growth
// hitting times.
func BenchmarkExperimentThm22(b *testing.B) { benchmarkExperiment(b, "thm22") }

// BenchmarkExperimentThm26 regenerates the Theorem 2.6 plurality
// threshold sweep.
func BenchmarkExperimentThm26(b *testing.B) { benchmarkExperiment(b, "thm26") }

// BenchmarkExperimentThm27 regenerates the Theorem 2.7 Ω(k) lower
// bound measurements.
func BenchmarkExperimentThm27(b *testing.B) { benchmarkExperiment(b, "thm27") }

// BenchmarkExperimentLem52 regenerates the Lemma 5.2 weak-opinion
// vanish times.
func BenchmarkExperimentLem52(b *testing.B) { benchmarkExperiment(b, "lem52") }

// BenchmarkExperimentLem55 regenerates the Lemma 5.5 bias-to-weak
// times.
func BenchmarkExperimentLem55(b *testing.B) { benchmarkExperiment(b, "lem55") }

// BenchmarkExperimentRem25 regenerates the Remark 2.5 opinion-decay
// curve.
func BenchmarkExperimentRem25(b *testing.B) { benchmarkExperiment(b, "rem25") }

// BenchmarkExperimentBern regenerates the §3.2–3.3 Bernstein/Freedman
// validity checks.
func BenchmarkExperimentBern(b *testing.B) { benchmarkExperiment(b, "bern") }

// BenchmarkExperimentAsync regenerates the §1.1 async/sync
// correspondence.
func BenchmarkExperimentAsync(b *testing.B) { benchmarkExperiment(b, "async") }

// BenchmarkExperimentAdv regenerates the §2.5 adversary sweep.
func BenchmarkExperimentAdv(b *testing.B) { benchmarkExperiment(b, "adv") }

// BenchmarkExperimentHMaj regenerates the §2.5 h-Majority sweep.
func BenchmarkExperimentHMaj(b *testing.B) { benchmarkExperiment(b, "hmaj") }

// BenchmarkExperimentGraphs regenerates the §2.5 beyond-complete-graph
// comparison.
func BenchmarkExperimentGraphs(b *testing.B) { benchmarkExperiment(b, "graphs") }

// BenchmarkExperimentZoo regenerates the protocol-zoo comparison
// (baselines of §1.1 and the §2.5 USD open question).
func BenchmarkExperimentZoo(b *testing.B) { benchmarkExperiment(b, "zoo") }

// BenchmarkExperimentGossip regenerates the message-passing-vs-engine
// cross-validation and the fault sweep.
func BenchmarkExperimentGossip(b *testing.B) { benchmarkExperiment(b, "gossip") }

// BenchmarkRunThreeMajority measures a full public-API consensus run
// (n = 10^6, k = 100, ~200 rounds).
func BenchmarkRunThreeMajority(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			N:        1_000_000,
			Protocol: ThreeMajority(),
			Init:     Balanced(100),
			Seed:     uint64(i + 1),
		})
		if err != nil || !res.Consensus {
			b.Fatalf("run failed: %v %+v", err, res)
		}
	}
}

// BenchmarkRunTwoChoices measures a full public-API consensus run for
// 2-Choices (n = 10^6, k = 100).
func BenchmarkRunTwoChoices(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			N:        1_000_000,
			Protocol: TwoChoices(),
			Init:     Balanced(100),
			Seed:     uint64(i + 1),
		})
		if err != nil || !res.Consensus {
			b.Fatalf("run failed: %v %+v", err, res)
		}
	}
}

// BenchmarkRunThreeMajorityManyOpinions measures the paper's headline
// many-opinions regime, k = n = 10^5 (every vertex starts with its own
// opinion) — the workload the sparse live-opinion engine targets: the
// live set collapses from 10^5 to 1 while a dense engine would keep
// paying Θ(k) per round.
func BenchmarkRunThreeMajorityManyOpinions(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			N:        100_000,
			Protocol: ThreeMajority(),
			Init:     Balanced(100_000),
			Seed:     uint64(i + 1),
		})
		if err != nil || !res.Consensus {
			b.Fatalf("run failed: %v %+v", err, res)
		}
	}
}

// BenchmarkRunTwoChoicesManyOpinions is the 2-Choices twin of the
// many-opinions benchmark. 2-Choices needs Θ̃(k) rounds (Theorem 1.1),
// so k = n = 10^5 full runs are out of benchmark budget; k = n = 10^4
// exercises the same all-singletons start at tractable cost.
func BenchmarkRunTwoChoicesManyOpinions(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			N:        10_000,
			Protocol: TwoChoices(),
			Init:     Balanced(10_000),
			Seed:     uint64(i + 1),
		})
		if err != nil || !res.Consensus {
			b.Fatalf("run failed: %v %+v", err, res)
		}
	}
}

// Ablation benches: the design choices DESIGN.md calls out, measured
// head-to-head on the same instance. The O(live) count-space engine is
// the design under test; the per-vertex reference and the concurrent
// gossip network are the alternatives it replaced.

// BenchmarkAblationCountsEngine runs a full consensus at n = 10^5,
// k = 16 on the exact count-space engine.
func BenchmarkAblationCountsEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			N:        100_000,
			Protocol: ThreeMajority(),
			Init:     Balanced(16),
			Seed:     uint64(i + 1),
		})
		if err != nil || !res.Consensus {
			b.Fatalf("run failed: %v %+v", err, res)
		}
	}
}

// BenchmarkAblationAgentEngine runs the same instance on the O(n)
// per-vertex agent engine (complete-graph topology).
func BenchmarkAblationAgentEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunOnGraph(GraphConfig{
			N:        100_000,
			Topology: CompleteTopology(),
			Protocol: ThreeMajority(),
			Init:     Balanced(16),
			Seed:     uint64(i + 1),
		})
		if err != nil || !res.Consensus {
			b.Fatalf("run failed: %v %+v", err, res)
		}
	}
}

// BenchmarkAblationGossipEngine runs a (smaller) instance as a real
// message-passing network — the cost of actual concurrency.
func BenchmarkAblationGossipEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunGossip(GossipConfig{
			N:        1_000,
			Protocol: ThreeMajority(),
			Init:     Balanced(16),
			Seed:     uint64(i + 1),
		})
		if err != nil || !res.Consensus {
			b.Fatalf("run failed: %v %+v", err, res)
		}
	}
}

// BenchmarkAblationLazy measures the laziness ablation: β = 0.5 should
// roughly double the consensus time of the wrapped dynamics.
func BenchmarkAblationLazy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			N:        100_000,
			Protocol: LazyVariant(ThreeMajority(), 0.5),
			Init:     Balanced(16),
			Seed:     uint64(i + 1),
		})
		if err != nil || !res.Consensus {
			b.Fatalf("run failed: %v %+v", err, res)
		}
	}
}
